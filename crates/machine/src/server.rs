//! The simulated server: power state machine, power curve, thermal network.

use crate::config::ServerConfig;
use coolopt_sim::noise::OrnsteinUhlenbeck;
use coolopt_units::{TempRate, Temperature, Watts, C_AIR};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a server within a machine room (its rack-slot index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServerId(pub usize);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Power state of a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerState {
    /// Machine is powered off (draws only standby power, serves no load).
    Off,
    /// Machine is booting; it draws idle power but serves no load yet.
    Booting {
        /// Seconds of boot remaining.
        remaining_secs: f64,
    },
    /// Machine is up and serving its commanded load.
    On,
}

/// Error returned when commanding an invalid load fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidLoad(pub f64);

impl fmt::Display for InvalidLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load fraction must be within [0, 1], got {}", self.0)
    }
}

impl std::error::Error for InvalidLoad {}

/// One simulated rack server.
///
/// The server is the richer-than-the-analytic-model substrate: a two-node
/// thermal RC network driven by a noisy, mildly nonlinear power curve. The
/// room model owns the composed ODE; it passes candidate state values into
/// [`Server::thermal_rates`] (which is a pure function, as RK4 requires) and
/// writes settled values back via [`Server::sync_thermal_state`].
#[derive(Debug, Clone)]
pub struct Server {
    id: ServerId,
    config: ServerConfig,
    state: PowerState,
    load: f64,
    t_cpu: Temperature,
    t_box: Temperature,
    power_noise: OrnsteinUhlenbeck,
    noise_watts: f64,
}

impl Server {
    /// Creates a server in the `Off` state, thermally equilibrated at
    /// `initial_temp`.
    pub fn new(id: ServerId, config: ServerConfig, seed: u64, initial_temp: Temperature) -> Self {
        Server {
            id,
            config,
            state: PowerState::Off,
            load: 0.0,
            t_cpu: initial_temp,
            t_box: initial_temp,
            // Power wanders slowly (τ = 30 s) around the nominal curve.
            power_noise: OrnsteinUhlenbeck::new(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id.0 as u64),
                30.0,
                config.power_noise_stddev,
            ),
            noise_watts: 0.0,
        }
    }

    /// This server's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The physical configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.state
    }

    /// `true` when the machine is serving load.
    pub fn is_on(&self) -> bool {
        matches!(self.state, PowerState::On)
    }

    /// Commands the machine on. A booting or on machine is unaffected.
    pub fn power_on(&mut self) {
        if matches!(self.state, PowerState::Off) {
            self.state = if self.config.boot_secs > 0.0 {
                PowerState::Booting {
                    remaining_secs: self.config.boot_secs,
                }
            } else {
                PowerState::On
            };
        }
    }

    /// Commands the machine off immediately.
    pub fn power_off(&mut self) {
        self.state = PowerState::Off;
    }

    /// Instantly forces the machine fully on, skipping the boot transient.
    ///
    /// Used by steady-state experiments, which per the paper "ignore initial
    /// transients".
    pub fn force_on(&mut self) {
        self.state = PowerState::On;
    }

    /// Commands a load fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLoad`] if `load` is outside `[0, 1]` or not finite.
    pub fn set_load(&mut self, load: f64) -> Result<(), InvalidLoad> {
        if !load.is_finite() || !(0.0..=1.0).contains(&load) {
            return Err(InvalidLoad(load));
        }
        self.load = load;
        Ok(())
    }

    /// The commanded load fraction.
    pub fn commanded_load(&self) -> f64 {
        self.load
    }

    /// The load actually being served: zero unless the machine is `On`,
    /// and derated by thermal throttling when the CPU runs into its
    /// protection band (real machines reduce frequency rather than melt).
    pub fn effective_load(&self) -> f64 {
        match self.state {
            PowerState::On => self.load * self.throttle_factor(),
            _ => 0.0,
        }
    }

    /// The thermal-throttle derating factor in `[0, 1]`: 1 below
    /// `throttle_start`, linearly falling to 0 at `throttle_full`.
    pub fn throttle_factor(&self) -> f64 {
        let start = self.config.throttle_start.as_kelvin();
        let full = self.config.throttle_full.as_kelvin();
        let t = self.t_cpu.as_kelvin();
        if t <= start {
            1.0
        } else if t >= full {
            0.0
        } else {
            (full - t) / (full - start)
        }
    }

    /// Instantaneous electrical power draw (W), including process noise and
    /// thermal throttling (a derated machine draws the power of the load it
    /// actually serves).
    pub fn power_draw(&self) -> Watts {
        let base = match self.state {
            PowerState::Off => return self.config.standby_power,
            PowerState::Booting { .. } => self.config.power_at_load(0.0),
            PowerState::On => self.config.power_at_load(self.effective_load()),
        };
        (base + Watts::new(self.noise_watts)).clamp_non_negative()
    }

    /// Heat dissipated into the chassis (W). All drawn power becomes heat.
    pub fn heat_output(&self) -> Watts {
        self.power_draw()
    }

    /// Current CPU temperature (true value, before sensor effects).
    pub fn cpu_temp(&self) -> Temperature {
        self.t_cpu
    }

    /// Current box-air temperature; with the perfect-mixing assumption this
    /// is also the exhaust temperature `T_out`.
    pub fn exhaust_temp(&self) -> Temperature {
        self.t_box
    }

    /// Chassis volumetric air flow while running (m³/s is in the config);
    /// an off machine's fans are spun down, modeled as 10 % residual flow
    /// (passive draught through the chassis).
    pub fn air_flow(&self) -> coolopt_units::FlowRate {
        match self.state {
            PowerState::Off => self.config.fan_flow * 0.1,
            _ => self.config.fan_flow,
        }
    }

    /// Thermal derivatives for candidate state `(t_cpu, t_box)` given inlet
    /// air at `t_in`.
    ///
    /// Implements the substrate version of the paper's Eqs. 1–2:
    ///
    /// * CPU node: `ν_cpu · dT_cpu/dt = (1−b)·P − ϑ·(T_cpu − T_box)`
    /// * Box node: `ν_box · dT_box/dt = ϑ·(T_cpu − T_box) + b·P
    ///   + F·c_air·(T_in − T_box)`
    ///
    /// where `b` is the heat-bypass fraction (non-CPU components dumping heat
    /// directly into the air stream) — a deliberate deviation from the pure
    /// paper model so that profiling has something real to fit.
    pub fn thermal_rates(
        &self,
        t_in: Temperature,
        t_cpu: Temperature,
        t_box: Temperature,
    ) -> (TempRate, TempRate) {
        let p = self.heat_output();
        let b = self.config.heat_bypass_fraction;
        let p_cpu = p * (1.0 - b);
        let p_box_direct = p * b;
        let exchange = self.config.theta_cpu_box * (t_cpu - t_box);
        let advect = (self.air_flow() * C_AIR) * (t_in - t_box);

        let d_cpu = (p_cpu - exchange) / self.config.nu_cpu;
        let d_box = (exchange + p_box_direct + advect) / self.config.nu_box;
        (d_cpu, d_box)
    }

    /// Writes back the thermal state after an ODE step.
    pub fn sync_thermal_state(&mut self, t_cpu: Temperature, t_box: Temperature) {
        self.t_cpu = t_cpu;
        self.t_box = t_box;
    }

    /// Advances the non-ODE internals (boot countdown, power noise) by
    /// `dt_secs`.
    pub fn advance(&mut self, dt_secs: f64) {
        self.noise_watts = self.power_noise.step(dt_secs);
        if let PowerState::Booting { remaining_secs } = self.state {
            let left = remaining_secs - dt_secs;
            self.state = if left <= 0.0 {
                PowerState::On
            } else {
                PowerState::Booting {
                    remaining_secs: left,
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_server() -> Server {
        let cfg = ServerConfig::builder()
            .power_noise_stddev(0.0)
            .heat_bypass_fraction(0.0)
            .build()
            .unwrap();
        Server::new(ServerId(0), cfg, 1, Temperature::from_celsius(20.0))
    }

    #[test]
    fn off_server_draws_standby_and_serves_nothing() {
        let mut s = quiet_server();
        s.set_load(0.7).unwrap();
        assert_eq!(s.power_draw(), Watts::ZERO);
        assert_eq!(s.effective_load(), 0.0);
        assert_eq!(s.commanded_load(), 0.7);
    }

    #[test]
    fn boot_transient_progresses_to_on() {
        let mut s = quiet_server();
        s.power_on();
        assert!(matches!(s.power_state(), PowerState::Booting { .. }));
        // Booting machines draw idle power but serve no load.
        s.set_load(1.0).unwrap();
        assert!((s.power_draw().as_watts() - 40.0).abs() < 1e-9);
        assert_eq!(s.effective_load(), 0.0);
        for _ in 0..70 {
            s.advance(1.0);
        }
        assert!(s.is_on());
        assert_eq!(s.effective_load(), 1.0);
        assert!((s.power_draw().as_watts() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn power_on_is_idempotent_while_booting() {
        let mut s = quiet_server();
        s.power_on();
        s.advance(30.0);
        let before = s.power_state();
        s.power_on();
        assert_eq!(s.power_state(), before);
    }

    #[test]
    fn force_on_skips_boot() {
        let mut s = quiet_server();
        s.force_on();
        assert!(s.is_on());
    }

    #[test]
    fn invalid_load_is_rejected() {
        let mut s = quiet_server();
        assert!(s.set_load(-0.1).is_err());
        assert!(s.set_load(1.1).is_err());
        assert!(s.set_load(f64::NAN).is_err());
        assert!(s.set_load(0.0).is_ok());
        assert!(s.set_load(1.0).is_ok());
    }

    #[test]
    fn steady_state_matches_analytic_prediction_without_bypass() {
        // With b = 0 and no noise, the substrate *is* the paper model, so the
        // settled CPU temperature must equal T_in + β·P (Eq. 5).
        let mut s = quiet_server();
        s.force_on();
        s.set_load(0.6).unwrap();
        let t_in = Temperature::from_celsius(22.0);

        // Relax to steady state with small Euler steps.
        let (mut tc, mut tb) = (t_in, t_in);
        for _ in 0..2_000_000 {
            let (dc, db) = s.thermal_rates(t_in, tc, tb);
            tc += dc * coolopt_units::Seconds::new(0.05);
            tb += db * coolopt_units::Seconds::new(0.05);
        }
        let p = s.power_draw();
        let beta = s.config().beta_kelvin_per_watt();
        let predicted = t_in.as_celsius() + beta * p.as_watts();
        assert!(
            (tc.as_celsius() - predicted).abs() < 0.01,
            "settled {} vs predicted {predicted}",
            tc.as_celsius()
        );
    }

    #[test]
    fn hotter_inlet_means_hotter_cpu() {
        let mut s = quiet_server();
        s.force_on();
        s.set_load(0.5).unwrap();
        let settle = |t_in: Temperature| {
            let (mut tc, mut tb) = (t_in, t_in);
            for _ in 0..500_000 {
                let (dc, db) = s.thermal_rates(t_in, tc, tb);
                tc += dc * coolopt_units::Seconds::new(0.1);
                tb += db * coolopt_units::Seconds::new(0.1);
            }
            tc
        };
        let cool = settle(Temperature::from_celsius(15.0));
        let warm = settle(Temperature::from_celsius(25.0));
        assert!(warm.as_celsius() > cool.as_celsius() + 9.0);
    }

    #[test]
    fn noise_is_reproducible_across_identically_seeded_servers() {
        let cfg = ServerConfig::r210_like();
        let mk = || {
            let mut s = Server::new(ServerId(3), cfg, 77, Temperature::from_celsius(20.0));
            s.force_on();
            s.set_load(0.5).unwrap();
            (0..32)
                .map(|_| {
                    s.advance(1.0);
                    s.power_draw().as_watts()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn heat_output_equals_power_draw() {
        let mut s = quiet_server();
        s.force_on();
        s.set_load(0.4).unwrap();
        assert_eq!(s.heat_output(), s.power_draw());
    }

    #[test]
    fn power_draw_is_monotone_in_load() {
        let mut s = quiet_server();
        s.force_on();
        let mut last = -1.0;
        for k in 0..=10 {
            s.set_load(k as f64 / 10.0).unwrap();
            let p = s.power_draw().as_watts();
            assert!(p > last, "power must increase with load");
            last = p;
        }
    }

    #[test]
    fn config_serde_round_trip() {
        let c = ServerConfig::r210_like();
        let json = serde_json::to_string(&c).unwrap();
        let back: ServerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn cloned_servers_evolve_identically() {
        let mut a = Server::new(
            ServerId(1),
            ServerConfig::r210_like(),
            99,
            Temperature::from_celsius(22.0),
        );
        a.force_on();
        a.set_load(0.6).unwrap();
        let mut b = a.clone();
        for _ in 0..50 {
            a.advance(1.0);
            b.advance(1.0);
            assert_eq!(a.power_draw(), b.power_draw());
        }
    }

    #[test]
    fn thermal_throttling_derates_and_self_limits() {
        let mut s = quiet_server();
        s.force_on();
        s.set_load(1.0).unwrap();
        // Below the band: untouched.
        s.sync_thermal_state(
            Temperature::from_celsius(60.0),
            Temperature::from_celsius(40.0),
        );
        assert_eq!(s.throttle_factor(), 1.0);
        assert_eq!(s.effective_load(), 1.0);
        // Mid-band: halfway derated (72 → 85 °C band, probe at 78.5 °C).
        s.sync_thermal_state(
            Temperature::from_celsius(78.5),
            Temperature::from_celsius(45.0),
        );
        assert!((s.throttle_factor() - 0.5).abs() < 1e-9);
        assert!((s.effective_load() - 0.5).abs() < 1e-9);
        // Power follows the served load, closing the protective feedback.
        assert!((s.power_draw().as_watts() - 61.75).abs() < 1e-6);
        // Beyond the band: fully derated.
        s.sync_thermal_state(
            Temperature::from_celsius(90.0),
            Temperature::from_celsius(50.0),
        );
        assert_eq!(s.effective_load(), 0.0);
        assert!((s.power_draw().as_watts() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_never_exceeds_the_throttle_ceiling() {
        // With a 45 °C inlet, an unthrottled full-load CPU would settle near
        // 45 + β·85 ≈ 90 °C; the protective feedback must hold it inside the
        // throttle band instead. (Idle heat is *not* throttleable — with an
        // inlet hot enough that idle power alone exceeds the band, the
        // machine cooks regardless, as in reality.)
        let mut s = quiet_server();
        s.force_on();
        s.set_load(1.0).unwrap();
        let t_in = Temperature::from_celsius(45.0);
        let (mut tc, mut tb) = (t_in, t_in);
        for _ in 0..2_000_000 {
            s.sync_thermal_state(tc, tb);
            let (dc, db) = s.thermal_rates(t_in, tc, tb);
            tc += dc * coolopt_units::Seconds::new(0.05);
            tb += db * coolopt_units::Seconds::new(0.05);
        }
        assert!(
            tc <= s.config().throttle_full + coolopt_units::TempDelta::from_kelvin(0.5),
            "settled at {tc} despite throttling"
        );
        assert!(
            tc > s.config().throttle_start,
            "premise broken: the throttle band should have been reached, got {tc}"
        );
        assert!(
            s.throttle_factor() < 1.0,
            "the machine must actually derate"
        );
    }

    #[test]
    fn off_server_has_reduced_airflow() {
        let s = quiet_server();
        let off_flow = s.air_flow().as_cubic_meters_per_second();
        assert!((off_flow - 0.003).abs() < 1e-12);
    }
}
