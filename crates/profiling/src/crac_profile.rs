//! Fitting the cooling-power model (Eq. 10) and calibrating the set-point
//! actuator.
//!
//! Three artifacts come out of the cooling-side calibration:
//!
//! 1. a [`CoolingModel`]: the paper's `P_ac = c·f_ac·(T_SP − T_ac)` fitted
//!    as an effective slope — the regression uses both `T_ac` and the total
//!    load as predictors and keeps the `T_ac` slope, so the load's direct
//!    contribution does not contaminate the temperature sensitivity;
//! 2. the supply ceiling `T_ac^max`: the warmest supply the unit can
//!    actually deliver (measured by commanding an unreachably high set point
//!    and watching where the supply settles — the valve pins at its
//!    minimum);
//! 3. a [`SetPointTable`]: the empirical `T_SP ↔ T_ac` offset per load, the
//!    paper's "choose the set point that produces the needed `T_ac` given
//!    the load at hand".

use crate::grid::PointRecord;
use crate::regression::{fit_multi, RegressionError};
use coolopt_cooling::SetPointTable;
use coolopt_model::CoolingModel;
use coolopt_room::MachineRoom;
use coolopt_units::{Seconds, Temperature};
use serde::{Deserialize, Serialize};

/// The fitted cooling model, ceiling and set-point calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingProfile {
    /// The fitted Eq. 10 model.
    pub model: CoolingModel,
    /// Warmest deliverable supply temperature.
    pub t_ac_max: Temperature,
    /// Set-point calibration table.
    pub set_points: SetPointTable,
    /// Fit quality of the cooling regression.
    pub r2: f64,
}

/// Error from cooling-side calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum CoolingProfileError {
    /// The regression failed.
    Regression(RegressionError),
    /// The fitted slope was not physically sensible.
    Unphysical(String),
    /// Not enough regulated records to calibrate set points.
    InsufficientData(String),
}

impl std::fmt::Display for CoolingProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoolingProfileError::Regression(e) => write!(f, "cooling fit failed: {e}"),
            CoolingProfileError::Unphysical(e) => write!(f, "cooling fit unphysical: {e}"),
            CoolingProfileError::InsufficientData(e) => {
                write!(f, "cooling calibration lacks data: {e}")
            }
        }
    }
}

impl std::error::Error for CoolingProfileError {}

/// Measures the supply ceiling: command a set point the room's heat can
/// never push the return up to, let the valve pin at its minimum, and read
/// where the supply settles.
pub fn measure_t_ac_max(
    room: &mut MachineRoom,
    probe_load: f64,
    settle_max: Seconds,
) -> Temperature {
    room.force_all_on();
    let n = room.len();
    room.set_loads(&vec![probe_load; n])
        .expect("probe load is a valid fraction");
    room.set_set_point(Temperature::from_celsius(35.0));
    room.settle(settle_max, 5.0);
    room.air_state().t_supply
}

/// Fits the cooling model and builds the set-point table from grid records
/// (plus an explicitly measured ceiling).
///
/// Only records where the set point was actually *regulating* (return within
/// 0.5 K of the set point) enter the set-point table; pinned-valve records
/// would corrupt the offsets.
///
/// # Errors
///
/// Returns [`CoolingProfileError`] when the regression fails, the slope is
/// non-positive, or no regulated records exist.
pub fn fit_cooling_model(
    records: &[PointRecord],
    t_ac_max: Temperature,
) -> Result<CoolingProfile, CoolingProfileError> {
    // P_ac ≈ c0 + c1·T_ac + c2·L_total; cf = −c1.
    let rows: Vec<[f64; 2]> = records
        .iter()
        .map(|r| [r.t_ac.as_kelvin(), r.total_load()])
        .collect();
    let y: Vec<f64> = records.iter().map(|r| r.cooling_power.as_watts()).collect();
    let fit = fit_multi(rows.iter().map(|r| r.as_slice()), &y)
        .map_err(CoolingProfileError::Regression)?;
    let cf = -fit.coefficients[0];
    if !(cf.is_finite() && cf > 0.0) {
        return Err(CoolingProfileError::Unphysical(format!(
            "cooling power must decrease with supply temperature; fitted slope {cf}"
        )));
    }

    // Anchor the reference set point so the model reproduces the median
    // record's absolute cooling power at its observed supply temperature.
    let mut by_power: Vec<&PointRecord> = records.iter().collect();
    by_power.sort_by(|a, b| {
        a.cooling_power
            .partial_cmp(&b.cooling_power)
            .expect("finite powers")
    });
    let median = by_power[by_power.len() / 2];
    let t_sp_ref =
        Temperature::from_kelvin(median.t_ac.as_kelvin() + median.cooling_power.as_watts() / cf);
    let model = CoolingModel::new(cf, t_sp_ref)
        .map_err(|e| CoolingProfileError::Unphysical(e.to_string()))?;

    // Set-point table from regulated records only.
    let regulated: Vec<(f64, Temperature, Temperature)> = records
        .iter()
        .filter(|r| (r.t_return - r.set_point).abs().as_kelvin() < 0.5)
        .map(|r| (r.total_load(), r.set_point, r.t_ac))
        .collect();
    // Collapse duplicate load levels (keep the first occurrence).
    let mut seen_loads: Vec<f64> = Vec::new();
    let deduped: Vec<(f64, Temperature, Temperature)> = regulated
        .into_iter()
        .filter(|(l, _, _)| {
            if seen_loads.iter().any(|&s| (s - l).abs() < 1e-9) {
                false
            } else {
                seen_loads.push(*l);
                true
            }
        })
        .collect();
    let set_points = SetPointTable::from_measurements(&deduped)
        .map_err(|e| CoolingProfileError::InsufficientData(e.to_string()))?;

    Ok(CoolingProfile {
        model,
        t_ac_max,
        set_points,
        r2: fit.r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_units::Watts;

    /// Records from a synthetic plant: P_ac = 20000 − 400·T_ac_rel + 90·L
    /// with T_ac in kelvin around 290.
    fn synthetic_records() -> Vec<PointRecord> {
        let mut out = Vec::new();
        for &t_ac_c in &[14.0, 17.0, 20.0] {
            for &l in &[0.5_f64, 2.0, 3.5] {
                let t_ac = Temperature::from_celsius(t_ac_c);
                let p_ac = 120_000.0 - 400.0 * t_ac.as_kelvin() + 90.0 * l;
                out.push(PointRecord {
                    loads: vec![l / 4.0; 4],
                    set_point: Temperature::from_celsius(t_ac_c + 3.0),
                    settled: true,
                    t_ac,
                    t_return: Temperature::from_celsius(t_ac_c + 3.0),
                    server_power: vec![Watts::new(50.0); 4],
                    cpu_temp: vec![Temperature::from_celsius(50.0); 4],
                    cooling_power: Watts::new(p_ac),
                });
            }
        }
        out
    }

    #[test]
    fn recovers_the_temperature_slope() {
        let profile =
            fit_cooling_model(&synthetic_records(), Temperature::from_celsius(21.0)).unwrap();
        assert!(
            (profile.model.cf() - 400.0).abs() < 1e-6,
            "cf = {}",
            profile.model.cf()
        );
        assert!(profile.r2 > 0.999);
        assert_eq!(profile.t_ac_max, Temperature::from_celsius(21.0));
        // The anchored model reproduces the median record's power.
        let median_like = Temperature::from_celsius(17.0);
        let predicted = profile.model.predict(median_like).as_watts();
        let actual = 120_000.0 - 400.0 * median_like.as_kelvin() + 90.0 * 2.0;
        assert!((predicted - actual).abs() < 200.0);
    }

    #[test]
    fn set_point_table_only_uses_regulated_records() {
        let mut records = synthetic_records();
        // Corrupt one record into a pinned-valve state (return far below SP).
        records[0].t_return = Temperature::from_celsius(10.0);
        let profile = fit_cooling_model(&records, Temperature::from_celsius(21.0)).unwrap();
        // The table still exists and interpolates.
        assert!(profile.set_points.len() >= 2);
    }

    #[test]
    fn inverted_slope_is_rejected() {
        let mut records = synthetic_records();
        for r in &mut records {
            // Flip the relationship: warmer supply ⇒ more power.
            r.cooling_power =
                Watts::new(400.0 * r.t_ac.as_kelvin() - 100_000.0 + 90.0 * r.total_load());
        }
        assert!(matches!(
            fit_cooling_model(&records, Temperature::from_celsius(21.0)),
            Err(CoolingProfileError::Unphysical(_))
        ));
    }
}
