//! Fitting the computing-power model (Eq. 9) — the paper's first profiling
//! experiment, whose output its Fig. 2 visualizes.

use crate::grid::PointRecord;
use crate::regression::{fit_simple, RegressionError};
use coolopt_model::PowerModel;
use coolopt_units::Watts;
use serde::{Deserialize, Serialize};

/// The fitted power model plus its training data and quality metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// The fitted `P = w1·L + w2`.
    pub model: PowerModel,
    /// Pooled training samples `(load, measured watts)` across machines.
    pub samples: Vec<(f64, f64)>,
    /// Coefficient of determination of the fit.
    pub r2: f64,
    /// Root-mean-square error (W).
    pub rmse: f64,
}

impl PowerProfile {
    /// Predicted power at load `l`.
    pub fn predict(&self, l: f64) -> Watts {
        self.model.predict(l)
    }
}

/// Pools every machine's `(load, measured power)` pair from the records and
/// fits one power model — the paper fits a single model because "the power
/// consumption coefficients are the same for all machines in our testbed".
///
/// # Errors
///
/// Returns [`RegressionError`] when the records cannot support a fit, or a
/// stringly error when the fitted coefficients are unphysical.
pub fn fit_power_model(records: &[PointRecord]) -> Result<PowerProfile, PowerProfileError> {
    let mut loads = Vec::new();
    let mut watts = Vec::new();
    for r in records {
        for (l, p) in r.loads.iter().zip(&r.server_power) {
            loads.push(*l);
            watts.push(p.as_watts());
        }
    }
    let fit = fit_simple(&loads, &watts).map_err(PowerProfileError::Regression)?;
    let model = PowerModel::new(Watts::new(fit.slope), Watts::new(fit.intercept))
        .map_err(|e| PowerProfileError::Unphysical(e.to_string()))?;
    Ok(PowerProfile {
        model,
        samples: loads.into_iter().zip(watts).collect(),
        r2: fit.r2,
        rmse: fit.rmse,
    })
}

/// Error from power-model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerProfileError {
    /// The regression itself failed.
    Regression(RegressionError),
    /// The regression succeeded but produced non-physical coefficients.
    Unphysical(String),
}

impl std::fmt::Display for PowerProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerProfileError::Regression(e) => write!(f, "power fit failed: {e}"),
            PowerProfileError::Unphysical(e) => write!(f, "power fit unphysical: {e}"),
        }
    }
}

impl std::error::Error for PowerProfileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_units::Temperature;

    fn synthetic_records() -> Vec<PointRecord> {
        // Two machines following P = 44·L + 41 with small systematic error.
        [0.0, 0.25, 0.5, 0.75]
            .iter()
            .map(|&l| PointRecord {
                loads: vec![l, l],
                set_point: Temperature::from_celsius(20.0),
                settled: true,
                t_ac: Temperature::from_celsius(17.0),
                t_return: Temperature::from_celsius(20.0),
                server_power: vec![
                    Watts::new(44.0 * l + 41.0 + 0.2),
                    Watts::new(44.0 * l + 41.0 - 0.2),
                ],
                cpu_temp: vec![Temperature::from_celsius(50.0); 2],
                cooling_power: Watts::new(3000.0),
            })
            .collect()
    }

    #[test]
    fn recovers_the_generating_coefficients() {
        let profile = fit_power_model(&synthetic_records()).unwrap();
        assert!((profile.model.w1().as_watts() - 44.0).abs() < 1e-6);
        assert!((profile.model.w2().as_watts() - 41.0).abs() < 1e-6);
        assert!(profile.r2 > 0.999);
        assert_eq!(profile.samples.len(), 8);
        assert!((profile.rmse - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_records_error() {
        assert!(matches!(
            fit_power_model(&[]),
            Err(PowerProfileError::Regression(_))
        ));
    }
}
