//! Driving the room through a grid of operating points.
//!
//! Profiling (paper §IV-A) is a sequence of steady-state experiments: set a
//! load pattern and a cooling set point, wait for the room to stabilize
//! ("the server was running until a stable CPU temperature was reached"),
//! then record everything through the instruments.

use coolopt_room::{MachineRoom, SteadyMeasurement};
use coolopt_units::{Seconds, Temperature, Watts};
use serde::{Deserialize, Serialize};

/// One operating point to visit.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Per-machine load fractions.
    pub loads: Vec<f64>,
    /// CRAC return-air set point.
    pub set_point: Temperature,
}

/// The steady-state record taken at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRecord {
    /// Commanded per-machine loads.
    pub loads: Vec<f64>,
    /// Commanded set point.
    pub set_point: Temperature,
    /// Whether the room actually settled within the budget.
    pub settled: bool,
    /// Mean observed supply temperature `T_ac`.
    pub t_ac: Temperature,
    /// Mean observed return temperature.
    pub t_return: Temperature,
    /// Mean per-machine power readings.
    pub server_power: Vec<Watts>,
    /// Mean per-machine CPU temperature readings.
    pub cpu_temp: Vec<Temperature>,
    /// Mean cooling-unit electrical power.
    pub cooling_power: Watts,
}

impl PointRecord {
    /// Total commanded load `Σ L_i`.
    pub fn total_load(&self) -> f64 {
        self.loads.iter().sum()
    }
}

/// Visits every operating point in order (machines all on) and records it.
///
/// # Panics
///
/// Panics if an operating point's load vector does not match the room size
/// or contains out-of-range fractions.
pub fn run_grid(
    room: &mut MachineRoom,
    points: &[OperatingPoint],
    settle_max: Seconds,
    window: Seconds,
) -> Vec<PointRecord> {
    room.force_all_on();
    points
        .iter()
        .map(|point| {
            room.set_loads(&point.loads)
                .expect("operating-point loads are valid");
            room.set_set_point(point.set_point);
            let m = SteadyMeasurement::collect(room, settle_max, window);
            PointRecord {
                loads: point.loads.clone(),
                set_point: point.set_point,
                settled: m.settled,
                t_ac: m.t_supply,
                t_return: m.t_return,
                server_power: m.server_powers,
                cpu_temp: m.cpu_temps,
                cooling_power: m.cooling_power,
            }
        })
        .collect()
}

/// The default profiling grid for a room of `n` machines: the paper's load
/// staircase (0, 10, 25, 50, 75 % of capacity) uniformly, plus two
/// alternating high/low patterns that decorrelate a machine's own power from
/// its neighbours' (improving the per-machine thermal fits), crossed with
/// the given set points.
pub fn default_grid(n: usize, set_points: &[Temperature]) -> Vec<OperatingPoint> {
    let mut patterns: Vec<Vec<f64>> = [0.0, 0.10, 0.25, 0.50, 0.75]
        .iter()
        .map(|&l| vec![l; n])
        .collect();
    patterns.push((0..n).map(|i| if i % 2 == 0 { 0.8 } else { 0.1 }).collect());
    patterns.push((0..n).map(|i| if i % 2 == 0 { 0.1 } else { 0.8 }).collect());
    let mut points = Vec::with_capacity(patterns.len() * set_points.len());
    for &sp in set_points {
        for p in &patterns {
            points.push(OperatingPoint {
                loads: p.clone(),
                set_point: sp,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_room::presets;

    #[test]
    fn default_grid_has_expected_shape() {
        let sps = [
            Temperature::from_celsius(17.0),
            Temperature::from_celsius(20.0),
        ];
        let grid = default_grid(4, &sps);
        assert_eq!(grid.len(), 14); // 7 patterns × 2 set points
        assert!(grid.iter().all(|p| p.loads.len() == 4));
        // The alternating patterns are present.
        assert!(grid.iter().any(|p| p.loads == vec![0.8, 0.1, 0.8, 0.1]));
    }

    #[test]
    fn run_grid_produces_sane_records() {
        let mut room = presets::small_rack(3, 21);
        let points = vec![
            OperatingPoint {
                loads: vec![0.2; 3],
                set_point: Temperature::from_celsius(19.0),
            },
            OperatingPoint {
                loads: vec![0.7; 3],
                set_point: Temperature::from_celsius(19.0),
            },
        ];
        let records = run_grid(&mut room, &points, Seconds::new(4000.0), Seconds::new(60.0));
        assert_eq!(records.len(), 2);
        for r in &records {
            assert!(r.settled, "grid point failed to settle");
            assert!(r.t_ac < r.t_return);
            assert_eq!(r.server_power.len(), 3);
        }
        // Higher load ⇒ more server power and hotter CPUs.
        assert!(records[1].server_power[0] > records[0].server_power[0]);
        assert!(records[1].cpu_temp[0] > records[0].cpu_temp[0]);
        assert!((records[1].total_load() - 2.1).abs() < 1e-9);
    }
}
