//! System profiling: turning a (simulated) machine room into a fitted
//! [`RoomModel`].
//!
//! This reproduces the paper's §IV-A methodology end to end:
//!
//! 1. drive the room through a grid of steady operating points
//!    ([`grid`] — the load staircase of the paper plus set-point variation);
//! 2. fit the power model `P = w1·L + w2` by least squares over every
//!    machine's `(load, measured power)` pairs ([`power_profile`], Fig. 2);
//! 3. fit each machine's `T_cpu = α·T_ac + β·P + γ` ([`thermal_profile`],
//!    Fig. 3);
//! 4. fit the cooling model, measure the achievable supply ceiling, and
//!    calibrate the `T_SP ↔ T_ac` mapping ([`crac_profile`]).
//!
//! ```no_run
//! use coolopt_room::presets::testbed_rack20;
//! use coolopt_profiling::profile_room;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut room = testbed_rack20(42);
//! let model = profile_room(&mut room)?;
//! assert_eq!(model.len(), 20);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod crac_profile;
pub mod filter;
pub mod grid;
pub mod power_profile;
pub mod regression;
pub mod thermal_profile;

pub use crac_profile::{fit_cooling_model, measure_t_ac_max, CoolingProfile};
pub use filter::{moving_average, LowPassFilter};
pub use grid::{default_grid, run_grid, OperatingPoint, PointRecord};
pub use power_profile::{fit_power_model, PowerProfile};
pub use regression::{fit_multi, fit_simple, MultiFit, RegressionError, SimpleFit};
pub use thermal_profile::{fit_thermal_models, ThermalProfile};

use coolopt_model::RoomModel;
use coolopt_room::MachineRoom;
use coolopt_units::{Seconds, Temperature};
use std::fmt;

/// Knobs of the profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOptions {
    /// The CPU temperature cap the deployment will enforce.
    pub t_max: Temperature,
    /// Set points visited by the grid.
    pub set_points: Vec<Temperature>,
    /// Load used when probing the supply ceiling.
    pub ceiling_probe_load: f64,
    /// Settling budget per operating point (simulated time).
    pub settle_max: Seconds,
    /// Measurement window per operating point (simulated time).
    pub window: Seconds,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            t_max: Temperature::from_celsius(60.0),
            set_points: vec![
                Temperature::from_celsius(16.0),
                Temperature::from_celsius(19.0),
                Temperature::from_celsius(22.0),
            ],
            ceiling_probe_load: 0.25,
            settle_max: Seconds::new(4000.0),
            window: Seconds::new(60.0),
        }
    }
}

/// Everything a full profiling run produces.
///
/// Serializable: deployments profile once, persist the result as JSON, and
/// plan against the saved profile from then on (see the `coolopt` CLI).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoomProfile {
    /// The assembled model the optimizer consumes.
    pub model: RoomModel,
    /// Power-side fit and data (Fig. 2).
    pub power: PowerProfile,
    /// Thermal-side fits (Fig. 3).
    pub thermal: ThermalProfile,
    /// Cooling-side fit and calibrations.
    pub cooling: CoolingProfile,
    /// The raw steady-state records of the grid.
    pub records: Vec<PointRecord>,
}

/// Error from a full profiling run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// Power fit failed.
    Power(power_profile::PowerProfileError),
    /// A thermal fit failed.
    Thermal(thermal_profile::ThermalProfileError),
    /// Cooling calibration failed.
    Cooling(crac_profile::CoolingProfileError),
    /// The assembled model was rejected.
    Model(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Power(e) => write!(f, "{e}"),
            ProfileError::Thermal(e) => write!(f, "{e}"),
            ProfileError::Cooling(e) => write!(f, "{e}"),
            ProfileError::Model(e) => write!(f, "model assembly failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Runs the full §IV-A profiling pipeline with explicit options.
///
/// # Errors
///
/// Returns [`ProfileError`] when any fit fails or the assembled model is
/// rejected.
pub fn profile_room_full(
    room: &mut MachineRoom,
    options: &ProfileOptions,
) -> Result<RoomProfile, ProfileError> {
    let points = default_grid(room.len(), &options.set_points);
    let records = run_grid(room, &points, options.settle_max, options.window);

    let power = fit_power_model(&records).map_err(ProfileError::Power)?;
    let thermal = fit_thermal_models(&records).map_err(ProfileError::Thermal)?;
    let t_ac_max = measure_t_ac_max(room, options.ceiling_probe_load, options.settle_max);
    let cooling = fit_cooling_model(&records, t_ac_max).map_err(ProfileError::Cooling)?;

    let model = RoomModel::new(
        power.model,
        thermal.models.clone(),
        cooling.model,
        options.t_max,
    )
    .map_err(|e| ProfileError::Model(e.to_string()))?
    .with_t_ac_max(cooling.t_ac_max);

    Ok(RoomProfile {
        model,
        power,
        thermal,
        cooling,
        records,
    })
}

/// Runs the profiling pipeline with default options and returns just the
/// model.
///
/// # Errors
///
/// See [`profile_room_full`].
pub fn profile_room(room: &mut MachineRoom) -> Result<RoomModel, ProfileError> {
    profile_room_full(room, &ProfileOptions::default()).map(|p| p.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_room::presets;

    #[test]
    fn profiles_a_small_rack_accurately() {
        let mut room = presets::small_rack(4, 31);
        let profile = profile_room_full(&mut room, &ProfileOptions::default()).unwrap();

        // Power model close to the substrate's generating curve
        // (w1 ≈ 45 − curvature bow, w2 ≈ 40).
        let w1 = profile.model.power().w1().as_watts();
        let w2 = profile.model.power().w2().as_watts();
        assert!((40.0..50.0).contains(&w1), "w1 = {w1}");
        assert!((36.0..44.0).contains(&w2), "w2 = {w2}");
        assert!(profile.power.r2 > 0.98, "power r2 = {}", profile.power.r2);

        // Thermal fits should explain the data well despite recirculation.
        for (i, r2) in profile.thermal.r2.iter().enumerate() {
            assert!(*r2 > 0.9, "machine {i} thermal r2 = {r2}");
        }
        // β within a factor of ~2 of the design value 1/(F·c)+1/ϑ ≈ 0.53.
        for m in &profile.thermal.models {
            assert!((0.2..1.2).contains(&m.beta()), "beta = {}", m.beta());
            assert!((0.1..1.5).contains(&m.alpha()), "alpha = {}", m.alpha());
        }

        // Cooling slope positive; ceiling in a sane band.
        assert!(profile.cooling.model.cf() > 0.0);
        let ceiling = profile.cooling.t_ac_max.as_celsius();
        assert!((10.0..30.0).contains(&ceiling), "t_ac_max = {ceiling}");

        // The assembled model carries the ceiling.
        assert!(profile.model.t_ac_max().is_some());
    }

    #[test]
    fn fitted_model_predicts_held_out_operating_point() {
        let mut room = presets::small_rack(4, 77);
        let profile = profile_room_full(&mut room, &ProfileOptions::default()).unwrap();

        // Visit a point not in the training grid and compare predictions.
        let held_out = grid::OperatingPoint {
            loads: vec![0.6, 0.3, 0.6, 0.3],
            set_point: Temperature::from_celsius(18.0),
        };
        let record = grid::run_grid(
            &mut room,
            std::slice::from_ref(&held_out),
            Seconds::new(4000.0),
            Seconds::new(60.0),
        )
        .remove(0);

        for i in 0..4 {
            let predicted = profile
                .model
                .thermal(i)
                .predict(record.t_ac, record.server_power[i]);
            let measured = record.cpu_temp[i];
            let err = (predicted - measured).abs().as_kelvin();
            // The paper reports "a few percent error"; allow 3 K here.
            assert!(
                err < 3.0,
                "machine {i}: predicted {predicted}, measured {measured}"
            );
        }
    }
}
