//! Least-squares fitting (the paper's "off-the-shelf linear regression …
//! least mean squares fitting technique"), implemented from scratch.
//!
//! Two entry points: [`fit_simple`] for one predictor (the power model,
//! Eq. 9) and [`fit_multi`] for several (the thermal model, Eq. 8, with
//! predictors `T_ac` and `P`). The multivariate solver forms the normal
//! equations and solves them by Gaussian elimination with partial pivoting —
//! adequate for the handful of well-conditioned predictors this system ever
//! fits.

use std::fmt;

/// Error returned for degenerate regression inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressionError {
    /// Predictor and response lengths differ.
    LengthMismatch {
        /// Number of predictor rows.
        x: usize,
        /// Number of responses.
        y: usize,
    },
    /// Fewer observations than coefficients.
    Underdetermined {
        /// Observations supplied.
        observations: usize,
        /// Coefficients requested.
        coefficients: usize,
    },
    /// The normal equations are singular (e.g. a constant predictor).
    Singular,
    /// An input value was NaN or infinite.
    NonFinite,
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::LengthMismatch { x, y } => {
                write!(f, "predictor rows ({x}) and responses ({y}) differ")
            }
            RegressionError::Underdetermined {
                observations,
                coefficients,
            } => write!(
                f,
                "{observations} observations cannot determine {coefficients} coefficients"
            ),
            RegressionError::Singular => write!(f, "normal equations are singular"),
            RegressionError::NonFinite => write!(f, "inputs contain non-finite values"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// Result of a simple (one-predictor) linear fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r2: f64,
    /// Root-mean-square error on the training data.
    pub rmse: f64,
}

impl SimpleFit {
    /// Predicted response at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Result of a multivariate fit `y ≈ coeffs·x + intercept`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFit {
    /// One coefficient per predictor.
    pub coefficients: Vec<f64>,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r2: f64,
    /// Root-mean-square error on the training data.
    pub rmse: f64,
}

impl MultiFit {
    /// Predicted response for the predictor row `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of coefficients.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "predictor arity mismatch");
        self.intercept
            + x.iter()
                .zip(&self.coefficients)
                .map(|(xi, ci)| xi * ci)
                .sum::<f64>()
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// # Errors
///
/// Returns [`RegressionError`] for mismatched lengths, fewer than two
/// observations, non-finite inputs, or a constant `x`.
pub fn fit_simple(x: &[f64], y: &[f64]) -> Result<SimpleFit, RegressionError> {
    let rows: Vec<[f64; 1]> = x.iter().map(|&v| [v]).collect();
    let multi = fit_multi(rows.iter().map(|r| r.as_slice()), y)?;
    Ok(SimpleFit {
        slope: multi.coefficients[0],
        intercept: multi.intercept,
        r2: multi.r2,
        rmse: multi.rmse,
    })
}

/// Fits `y ≈ Σ c_j·x_j + intercept` by ordinary least squares over predictor
/// rows `xs`.
///
/// # Errors
///
/// Returns [`RegressionError`] for inconsistent arities, non-finite inputs,
/// underdetermined systems, or singular normal equations.
pub fn fit_multi<'a, I>(xs: I, y: &[f64]) -> Result<MultiFit, RegressionError>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let rows: Vec<&[f64]> = xs.into_iter().collect();
    if rows.len() != y.len() {
        return Err(RegressionError::LengthMismatch {
            x: rows.len(),
            y: y.len(),
        });
    }
    let p = rows.first().map(|r| r.len()).unwrap_or(0);
    if rows.iter().any(|r| r.len() != p) {
        return Err(RegressionError::LengthMismatch {
            x: rows.len(),
            y: y.len(),
        });
    }
    let dim = p + 1; // + intercept
    if rows.len() < dim {
        return Err(RegressionError::Underdetermined {
            observations: rows.len(),
            coefficients: dim,
        });
    }
    if rows.iter().flat_map(|r| r.iter()).any(|v| !v.is_finite())
        || y.iter().any(|v| !v.is_finite())
    {
        return Err(RegressionError::NonFinite);
    }

    // Normal equations: (XᵀX)·β = Xᵀy, with the intercept as column p.
    let mut xtx = vec![vec![0.0; dim]; dim];
    let mut xty = vec![0.0; dim];
    let design = |row: &[f64], j: usize| if j == p { 1.0 } else { row[j] };
    for (row, &yi) in rows.iter().zip(y) {
        for a in 0..dim {
            let xa = design(row, a);
            xty[a] += xa * yi;
            for (b, cell) in xtx[a].iter_mut().enumerate() {
                *cell += xa * design(row, b);
            }
        }
    }
    let beta = solve_gaussian(&mut xtx, &mut xty)?;

    let (coefficients, intercept) = (beta[..p].to_vec(), beta[p]);
    let fit = MultiFit {
        coefficients,
        intercept,
        r2: 0.0,
        rmse: 0.0,
    };
    let n = y.len() as f64;
    let mean = y.iter().sum::<f64>() / n;
    let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = rows
        .iter()
        .zip(y)
        .map(|(row, &yi)| (yi - fit.predict(row)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(MultiFit {
        r2,
        rmse: (ss_res / n).sqrt(),
        ..fit
    })
}

/// Solves `A·x = b` in place by Gaussian elimination with partial pivoting.
fn solve_gaussian(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, RegressionError> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot: the row with the largest magnitude in this column.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix")
            })
            .expect("non-empty column");
        if a[pivot][col].abs() < 1e-12 {
            return Err(RegressionError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (k, cell) in rest[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_fit_recovers_exact_line() {
        let x: Vec<f64> = (0..20).map(|k| k as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let fit = fit_simple(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 7.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!(fit.rmse < 1e-9);
    }

    #[test]
    fn multi_fit_recovers_exact_plane() {
        let rows: Vec<[f64; 2]> = (0..30).map(|k| [(k % 5) as f64, (k / 5) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 4.0).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let fit = fit_multi(refs, &y).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] + 0.5).abs() < 1e-9);
        assert!((fit.intercept - 4.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_is_near_truth_with_good_r2() {
        // Deterministic "noise" orthogonal-ish to the trend.
        let x: Vec<f64> = (0..200).map(|k| k as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(k, v)| 1.5 * v + 2.0 + if k % 2 == 0 { 0.2 } else { -0.2 })
            .collect();
        let fit = fit_simple(&x, &y).unwrap();
        assert!((fit.slope - 1.5).abs() < 0.01);
        assert!((fit.intercept - 2.0).abs() < 0.05);
        assert!(fit.r2 > 0.99);
        assert!((fit.rmse - 0.2).abs() < 0.01);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert_eq!(
            fit_simple(&[1.0], &[1.0, 2.0]),
            Err(RegressionError::LengthMismatch { x: 1, y: 2 })
        );
        assert!(matches!(
            fit_simple(&[1.0], &[1.0]),
            Err(RegressionError::Underdetermined { .. })
        ));
        // Constant predictor → singular.
        assert_eq!(
            fit_simple(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(RegressionError::Singular)
        );
        assert_eq!(
            fit_simple(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]),
            Err(RegressionError::NonFinite)
        );
    }

    #[test]
    fn constant_response_has_unit_r2_by_convention() {
        let fit = fit_simple(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!((fit.slope).abs() < 1e-9);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn predict_with_wrong_arity_panics() {
        let rows: Vec<[f64; 2]> = (0..10).map(|k| [k as f64, (k * k) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let fit = fit_multi(refs, &y).unwrap();
        fit.predict(&[1.0]);
    }
}
