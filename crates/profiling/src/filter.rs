//! Signal smoothing.
//!
//! The paper low-pass filters its measured power and temperature traces "to
//! eliminate noise" before plotting and regression. Both the single-pole IIR
//! filter and a centered moving average are provided.

use coolopt_sim::TimeSeries;
use coolopt_units::Seconds;

/// A single-pole IIR low-pass filter `y += a·(x − y)`.
///
/// ```
/// use coolopt_profiling::filter::LowPassFilter;
/// let mut f = LowPassFilter::new(0.5);
/// assert_eq!(f.apply(10.0), 10.0); // first sample initializes the state
/// assert_eq!(f.apply(0.0), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct LowPassFilter {
    alpha: f64,
    state: Option<f64>,
}

impl LowPassFilter {
    /// Creates a filter with smoothing factor `alpha ∈ (0, 1]` (1 = no
    /// smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing factor must be in (0, 1], got {alpha}"
        );
        LowPassFilter { alpha, state: None }
    }

    /// Creates a filter whose time constant is `tau` given samples spaced
    /// `dt` apart (`alpha = dt/(tau + dt)`).
    pub fn with_time_constant(tau: Seconds, dt: Seconds) -> Self {
        let alpha = dt.as_secs_f64() / (tau.as_secs_f64() + dt.as_secs_f64());
        Self::new(alpha.clamp(f64::MIN_POSITIVE, 1.0))
    }

    /// Feeds one sample and returns the filtered value.
    pub fn apply(&mut self, x: f64) -> f64 {
        let y = match self.state {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.state = Some(y);
        y
    }

    /// Filters a whole series, preserving time stamps.
    pub fn apply_series(&mut self, series: &TimeSeries) -> TimeSeries {
        series.iter().map(|(t, v)| (t, self.apply(v))).collect()
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

/// Centered moving average of width `window` (clamped at the edges).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let half = window / 2;
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pass_converges_to_constant_input() {
        let mut f = LowPassFilter::new(0.2);
        let mut y = 0.0;
        f.apply(0.0);
        for _ in 0..100 {
            y = f.apply(8.0);
        }
        assert!((y - 8.0).abs() < 1e-6);
    }

    #[test]
    fn low_pass_attenuates_alternating_noise() {
        let mut f = LowPassFilter::new(0.1);
        let mut last = 0.0;
        for k in 0..1000 {
            let x = 5.0 + if k % 2 == 0 { 1.0 } else { -1.0 };
            last = f.apply(x);
        }
        // Residual ripple should be far below the ±1 input ripple.
        assert!((last - 5.0).abs() < 0.1);
    }

    #[test]
    fn time_constant_construction() {
        let f = LowPassFilter::with_time_constant(Seconds::new(9.0), Seconds::new(1.0));
        assert!((f.alpha - 0.1).abs() < 1e-12);
    }

    #[test]
    fn series_filtering_preserves_timestamps() {
        let series: TimeSeries = (0..5).map(|k| (Seconds::new(k as f64), k as f64)).collect();
        let out = LowPassFilter::new(1.0).apply_series(&series);
        assert_eq!(out.times(), series.times());
        assert_eq!(out.values(), series.values()); // alpha = 1 is identity
    }

    #[test]
    fn moving_average_flattens_and_handles_edges() {
        let v = [0.0, 10.0, 0.0, 10.0, 0.0];
        let m = moving_average(&v, 3);
        assert_eq!(m.len(), 5);
        assert!((m[2] - 20.0 / 3.0).abs() < 1e-12);
        // Edges average over the available window only.
        assert!((m[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn zero_alpha_panics() {
        LowPassFilter::new(0.0);
    }
}
