//! Fitting the per-machine stable-temperature models (Eq. 8) — the paper's
//! second profiling experiment, whose output its Fig. 3 visualizes.
//!
//! Unlike the power model, "the thermal model coefficients are different
//! among machines … due to the difference in the relative position of
//! machines on our rack", so a separate regression runs per machine, with
//! predictors `(T_ac, P_i)` and response `T_i^cpu` — all in kelvin, matching
//! the model's absolute-temperature form.

use crate::grid::PointRecord;
use crate::regression::{fit_multi, MultiFit, RegressionError};
use coolopt_model::ThermalModel;
use serde::{Deserialize, Serialize};

/// The fitted thermal models plus per-machine fit quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalProfile {
    /// One fitted model per machine.
    pub models: Vec<ThermalModel>,
    /// Per-machine coefficient of determination.
    pub r2: Vec<f64>,
    /// Per-machine RMSE (K).
    pub rmse: Vec<f64>,
}

/// Error from thermal-model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalProfileError {
    /// Regression failure for one machine.
    Regression {
        /// Machine index.
        machine: usize,
        /// Underlying error.
        source: RegressionError,
    },
    /// The fit produced coefficients the model rejects (e.g. negative α).
    Unphysical {
        /// Machine index.
        machine: usize,
        /// Description.
        what: String,
    },
}

impl std::fmt::Display for ThermalProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalProfileError::Regression { machine, source } => {
                write!(f, "thermal fit of machine {machine} failed: {source}")
            }
            ThermalProfileError::Unphysical { machine, what } => {
                write!(f, "thermal fit of machine {machine} unphysical: {what}")
            }
        }
    }
}

impl std::error::Error for ThermalProfileError {}

/// Fits `T_cpu = α·T_ac + β·P + γ` for every machine from the grid records.
///
/// # Errors
///
/// Returns [`ThermalProfileError`] when any machine's regression fails or
/// yields unphysical coefficients.
pub fn fit_thermal_models(records: &[PointRecord]) -> Result<ThermalProfile, ThermalProfileError> {
    let n = records.first().map(|r| r.loads.len()).unwrap_or(0);
    let mut models = Vec::with_capacity(n);
    let mut r2 = Vec::with_capacity(n);
    let mut rmse = Vec::with_capacity(n);
    for machine in 0..n {
        let fit = fit_machine(records, machine)
            .map_err(|source| ThermalProfileError::Regression { machine, source })?;
        let model = ThermalModel::new(fit.coefficients[0], fit.coefficients[1], fit.intercept)
            .map_err(|e| ThermalProfileError::Unphysical {
                machine,
                what: e.to_string(),
            })?;
        models.push(model);
        r2.push(fit.r2);
        rmse.push(fit.rmse);
    }
    Ok(ThermalProfile { models, r2, rmse })
}

fn fit_machine(records: &[PointRecord], machine: usize) -> Result<MultiFit, RegressionError> {
    let rows: Vec<[f64; 2]> = records
        .iter()
        .map(|r| [r.t_ac.as_kelvin(), r.server_power[machine].as_watts()])
        .collect();
    let y: Vec<f64> = records
        .iter()
        .map(|r| r.cpu_temp[machine].as_kelvin())
        .collect();
    fit_multi(rows.iter().map(|r| r.as_slice()), &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_units::{Temperature, Watts};

    /// Records generated exactly by known (α, β, γ) per machine.
    fn synthetic_records() -> Vec<PointRecord> {
        let alphas = [0.92, 0.80];
        let betas = [0.5, 0.55];
        let gammas = [20.0, 30.0];
        let mut records = Vec::new();
        for &t_ac_c in &[14.0, 17.0, 20.0] {
            for &(l0, l1) in &[(0.0, 0.0), (0.5, 0.1), (0.1, 0.5), (0.75, 0.75)] {
                let t_ac = Temperature::from_celsius(t_ac_c);
                let p = [45.0 * l0 + 40.0, 45.0 * l1 + 40.0];
                let cpu: Vec<Temperature> = (0..2)
                    .map(|i| {
                        Temperature::from_kelvin(
                            alphas[i] * t_ac.as_kelvin() + betas[i] * p[i] + gammas[i],
                        )
                    })
                    .collect();
                records.push(PointRecord {
                    loads: vec![l0, l1],
                    set_point: Temperature::from_celsius(t_ac_c + 3.0),
                    settled: true,
                    t_ac,
                    t_return: Temperature::from_celsius(t_ac_c + 3.0),
                    server_power: vec![Watts::new(p[0]), Watts::new(p[1])],
                    cpu_temp: cpu,
                    cooling_power: Watts::new(3000.0),
                });
            }
        }
        records
    }

    #[test]
    fn recovers_per_machine_coefficients() {
        let profile = fit_thermal_models(&synthetic_records()).unwrap();
        assert_eq!(profile.models.len(), 2);
        assert!((profile.models[0].alpha() - 0.92).abs() < 1e-6);
        assert!((profile.models[0].beta() - 0.5).abs() < 1e-6);
        assert!((profile.models[0].gamma() - 20.0).abs() < 1e-4);
        assert!((profile.models[1].alpha() - 0.80).abs() < 1e-6);
        assert!((profile.models[1].beta() - 0.55).abs() < 1e-6);
        assert!((profile.models[1].gamma() - 30.0).abs() < 1e-4);
        assert!(profile.r2.iter().all(|&v| v > 0.999));
        assert!(profile.rmse.iter().all(|&v| v < 1e-6));
    }

    #[test]
    fn empty_records_yield_empty_profile() {
        let profile = fit_thermal_models(&[]).unwrap();
        assert!(profile.models.is_empty());
    }

    #[test]
    fn too_few_points_error() {
        let records: Vec<PointRecord> = synthetic_records().into_iter().take(2).collect();
        assert!(matches!(
            fit_thermal_models(&records),
            Err(ThermalProfileError::Regression { machine: 0, .. })
        ));
    }
}
