//! Scenario materialization: [`Scenario`] → simulated plant.
//!
//! A validated scenario document becomes either a [`MachineRoom`] (one
//! zone — the classic single-CRAC plant, bit-identical to the historical
//! code presets for the shipped `testbed_rack20` document) or a
//! [`MultiZoneRoom`] (several zones/CRACs).
//!
//! Per-machine manufacturing jitter is drawn from the zone's deterministic
//! RNG stream ([`Scenario::zone_seed`]; zone 0 is the historical
//! single-rack stream) in the schema's fixed field order, so the same
//! document always materializes the same machines.

use crate::airflow::AirDistribution;
use crate::geometry::Rack;
use crate::multizone::MultiZoneRoom;
use crate::room::{InvalidRoom, MachineRoom, RoomConfig};
use coolopt_cooling::CracUnit;
use coolopt_machine::{Server, ServerConfig, ServerId};
use coolopt_scenario::{MachineClass, Scenario, ZoneSpec};
use coolopt_units::{Conductance, FlowRate, HeatCapacity, Temperature, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A materialized plant: single-zone scenarios become the classic
/// [`MachineRoom`], multi-zone ones a [`MultiZoneRoom`].
#[derive(Debug, Clone)]
pub enum MaterializedRoom {
    /// One zone, one CRAC.
    Single(MachineRoom),
    /// Several zones, one CRAC each.
    Multi(MultiZoneRoom),
}

impl MaterializedRoom {
    /// Number of servers.
    pub fn len(&self) -> usize {
        match self {
            MaterializedRoom::Single(r) => r.len(),
            MaterializedRoom::Multi(r) => r.len(),
        }
    }

    /// `true` when the plant holds no servers (never after materialization).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds one zone's servers, drawing manufacturing jitter from the zone's
/// RNG stream in the schema's canonical field order. `index_base` is the
/// zone's first global server index (0 for single-zone scenarios, which
/// makes this exactly the historical `parametric_rack_with` stream).
fn build_zone_servers(
    scenario: &Scenario,
    zone: &ZoneSpec,
    z: usize,
    index_base: usize,
) -> Vec<Server> {
    let n = zone.machine_count();
    let mut rng = StdRng::seed_from_u64(scenario.zone_seed(z));
    let mut servers = Vec::with_capacity(n);
    for j in 0..n {
        let class: &MachineClass = scenario
            .class(zone.class_of_slot(j))
            .expect("validated scenario resolves every class");
        let base = class.server;
        let fracs = class.jitter.fractions();
        // The RNG is drawn even at scale 0 so the same seed yields the same
        // stream regardless of the scale — the historical preset rule.
        let mut jitter =
            |frac: f64| 1.0 + zone.jitter_scale * frac * (rng.random::<f64>() * 2.0 - 1.0);
        let mut config: ServerConfig = base;
        config.fan_flow = FlowRate::cubic_meters_per_second(
            base.fan_flow.as_cubic_meters_per_second() * jitter(fracs[0]),
        );
        config.theta_cpu_box = Conductance::watts_per_kelvin(
            base.theta_cpu_box.as_watts_per_kelvin() * jitter(fracs[1]),
        );
        config.idle_power = Watts::new(base.idle_power.as_watts() * jitter(fracs[2]));
        config.load_power = Watts::new(base.load_power.as_watts() * jitter(fracs[3]));
        config.nu_cpu =
            HeatCapacity::joules_per_kelvin(base.nu_cpu.as_joules_per_kelvin() * jitter(fracs[4]));
        config.nu_box =
            HeatCapacity::joules_per_kelvin(base.nu_box.as_joules_per_kelvin() * jitter(fracs[5]));
        let i = index_base + j;
        servers.push(Server::new(
            ServerId(i),
            config,
            scenario.seed.wrapping_add(i as u64),
            Temperature::from_celsius(24.0),
        ));
    }
    servers
}

/// Materializes a **single-zone** scenario into the classic [`MachineRoom`].
///
/// For scenarios emitted by `coolopt_scenario::presets::single_zone` this
/// reproduces `presets::parametric_rack_with` bit for bit (pinned by the
/// regression tests).
///
/// # Errors
///
/// Returns [`InvalidRoom`] for multi-zone scenarios or a room the
/// component-level validation rejects.
pub fn materialize_machine_room(scenario: &Scenario) -> Result<MachineRoom, InvalidRoom> {
    if !scenario.is_single_zone() {
        return Err(InvalidRoom::new(format!(
            "scenario {:?} has {} zones; use materialize()",
            scenario.name,
            scenario.zone_count()
        )));
    }
    let zone = &scenario.zones[0];
    let n = zone.machine_count();
    let rack = Rack::new_1u(n, zone.rack_base_height_m);
    let servers = build_zone_servers(scenario, zone, 0, 0);
    let supply_fraction: Vec<f64> = (0..n).map(|j| zone.supply_fraction(j, n)).collect();
    let mut recirculation = vec![vec![0.0; n]; n];
    for (j, row) in recirculation.iter_mut().enumerate().skip(1) {
        row[j - 1] = zone.neighbor_recirculation(j, n);
    }
    let capture = vec![zone.capture; n];
    let air = AirDistribution::new(supply_fraction, recirculation, capture)
        .map_err(|e| InvalidRoom::new(format!("scenario air distribution: {e}")))?;
    let crac = CracUnit::new(zone.crac);
    MachineRoom::new(
        servers,
        crac,
        air,
        rack,
        RoomConfig::default(),
        scenario.seed,
    )
}

/// Materializes a scenario into a simulated plant: [`MachineRoom`] for one
/// zone, [`MultiZoneRoom`] for several.
///
/// # Errors
///
/// Returns [`InvalidRoom`] when component-level validation rejects the
/// assembled plant (a validated scenario normally cannot trigger this,
/// except by overcommitting a CRAC's air flow).
pub fn materialize(scenario: &Scenario) -> Result<MaterializedRoom, InvalidRoom> {
    if scenario.is_single_zone() {
        return Ok(MaterializedRoom::Single(materialize_machine_room(
            scenario,
        )?));
    }
    let mut zone_servers = Vec::with_capacity(scenario.zone_count());
    let mut supply_fraction = Vec::new();
    let mut neighbor_recirc = Vec::new();
    let mut capture = Vec::new();
    let mut supply_share = Vec::with_capacity(scenario.zone_count());
    let mut index_base = 0usize;
    for (z, zone) in scenario.zones.iter().enumerate() {
        let n = zone.machine_count();
        zone_servers.push(build_zone_servers(scenario, zone, z, index_base));
        for j in 0..n {
            supply_fraction.push(zone.supply_fraction(j, n));
            neighbor_recirc.push(zone.neighbor_recirculation(j, n));
            capture.push(zone.capture);
        }
        supply_share.push(zone.supply_share.clone());
        index_base += n;
    }
    let cracs: Vec<CracUnit> = scenario
        .zones
        .iter()
        .map(|z| CracUnit::new(z.crac))
        .collect();
    let cross_zone = if scenario.cross_zone_recirculation.is_empty() {
        vec![vec![0.0; scenario.zone_count()]; scenario.zone_count()]
    } else {
        scenario.cross_zone_recirculation.clone()
    };
    MultiZoneRoom::new(
        zone_servers,
        cracs,
        supply_fraction,
        neighbor_recirc,
        capture,
        supply_share,
        cross_zone,
        RoomConfig::default(),
        scenario.seed,
    )
    .map(MaterializedRoom::Multi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use coolopt_scenario::presets as scenario_presets;
    use coolopt_scenario::RackOptions;
    use coolopt_units::Seconds;

    /// The tentpole regression: materializing the shipped testbed scenario
    /// reproduces the historical code preset bit for bit — every server
    /// parameter, air fraction, and (after simulation) every state bit.
    #[test]
    fn testbed_scenario_materializes_bit_identically_to_the_preset() {
        for seed in [0, 5, 123] {
            let scenario = scenario_presets::testbed_rack20(seed);
            let from_scenario = materialize_machine_room(&scenario).unwrap();
            let from_code = presets::testbed_rack20(seed);
            assert_rooms_identical(&from_scenario, &from_code);
        }
    }

    #[test]
    fn parametric_options_map_bit_identically_too() {
        let options = RackOptions {
            machines: 7,
            seed: 9,
            recirculation_scale: 1.5,
            supply_span: 0.3,
            base_supply: 0.8,
            jitter_scale: 0.5,
        };
        let scenario = scenario_presets::single_zone(options);
        let a = materialize_machine_room(&scenario).unwrap();
        let b = presets::parametric_rack_with(options);
        assert_rooms_identical(&a, &b);
    }

    fn assert_rooms_identical(a: &MachineRoom, b: &MachineRoom) {
        assert_eq!(a.len(), b.len());
        for (sa, sb) in a.servers().iter().zip(b.servers()) {
            assert_eq!(sa.config(), sb.config(), "server configs must match");
        }
        for i in 0..a.len() {
            assert_eq!(
                a.air_distribution().supply_fraction(i).to_bits(),
                b.air_distribution().supply_fraction(i).to_bits()
            );
            assert_eq!(
                a.air_distribution().capture_fraction(i),
                b.air_distribution().capture_fraction(i)
            );
        }
        assert_eq!(a.config(), b.config());
        // Behavioural identity: identical trajectories, sensors included.
        let mut a = a.clone();
        let mut b = b.clone();
        for room in [&mut a, &mut b] {
            room.force_all_on();
            let n = room.len();
            room.set_loads(&vec![0.6; n]).unwrap();
            room.set_set_point(Temperature::from_celsius(18.0));
            room.run_for(Seconds::new(300.0));
        }
        for (sa, sb) in a.servers().iter().zip(b.servers()) {
            assert_eq!(
                sa.cpu_temp().as_kelvin().to_bits(),
                sb.cpu_temp().as_kelvin().to_bits(),
                "trajectories must be bit-identical"
            );
        }
        assert_eq!(
            a.room_temp().as_kelvin().to_bits(),
            b.room_temp().as_kelvin().to_bits()
        );
        assert_eq!(a.read_cpu_temp(0), b.read_cpu_temp(0));
    }

    #[test]
    fn two_zone_scenario_materializes_and_settles() {
        let scenario = scenario_presets::two_zone_hetero(1);
        let room = materialize(&scenario).unwrap();
        let MaterializedRoom::Multi(mut room) = room else {
            panic!("two zones must materialize to a MultiZoneRoom");
        };
        assert_eq!(room.len(), scenario.total_machines());
        assert_eq!(room.zone_count(), 2);
        room.force_all_on();
        let n = room.len();
        room.set_loads(&vec![0.5; n]).unwrap();
        room.set_fixed_supplies(&[
            Temperature::from_celsius(16.0),
            Temperature::from_celsius(14.0),
        ]);
        assert!(
            room.settle(Seconds::new(6000.0), 5.0),
            "two-zone room failed to settle"
        );
        let air = room.air_state();
        assert_eq!(air.supplies.len(), 2);
        assert_eq!(air.inlets.len(), n);
        // The far zone breathes mostly CRAC 1's (colder) supply, but its
        // machines are hotter per watt; everything must stay physical.
        for i in 0..n {
            let t = room.servers()[i].cpu_temp();
            assert!(
                t.as_celsius() > 20.0 && t.as_celsius() < 90.0,
                "server {i} at {t}"
            );
        }
        // Both CRACs extract heat: supplies sit below their returns.
        for u in 0..2 {
            assert!(air.supplies[u] < air.returns[u]);
        }
    }

    #[test]
    fn colder_zone_supply_cools_that_zones_machines_more() {
        let scenario = scenario_presets::two_zone_hetero(2);
        let settle_with = |t0: f64, t1: f64| {
            let MaterializedRoom::Multi(mut room) = materialize(&scenario).unwrap() else {
                panic!("expected multi-zone");
            };
            room.force_all_on();
            let n = room.len();
            room.set_loads(&vec![0.6; n]).unwrap();
            room.set_fixed_supplies(&[
                Temperature::from_celsius(t0),
                Temperature::from_celsius(t1),
            ]);
            assert!(room.settle(Seconds::new(6000.0), 5.0));
            let far = room.zone_range(1);
            let mean_far: f64 = far
                .clone()
                .map(|i| room.servers()[i].cpu_temp().as_celsius())
                .sum::<f64>()
                / far.len() as f64;
            mean_far
        };
        let warm = settle_with(16.0, 18.0);
        let cold = settle_with(16.0, 12.0);
        assert!(
            warm - cold > 2.0,
            "cooling CRAC 1 by 6 K should cool the far zone clearly (warm {warm:.2}, cold {cold:.2})"
        );
    }

    #[test]
    fn materialize_rejects_multi_zone_via_single_entry() {
        let scenario = scenario_presets::two_zone_hetero(0);
        assert!(materialize_machine_room(&scenario).is_err());
    }
}
