//! A machine room with several zones, each served (mostly) by its own CRAC.
//!
//! [`MultiZoneRoom`] generalizes [`crate::room::MachineRoom`] to `Z` CRAC
//! units over `Z` racks ("zones"), with two coupling mechanisms the
//! single-CRAC model cannot express:
//!
//! * **Supply sharing** — zone `z`'s cold stream is a convex mixture of the
//!   CRAC supplies, `T_mix_z = Σ_u share[z][u]·T_supply_u` (two units
//!   feeding one aisle through a common plenum). Returns flow back the same
//!   way: CRAC `u` receives `share[z][u]` of zone `z`'s captured exhaust.
//! * **Cross-zone recirculation** — a fraction `cross[z][w]` of every
//!   zone-`z` inlet is drawn from zone `w`'s mean exhaust (hot aisle
//!   leakage across the room).
//!
//! Within a zone the air paths are exactly the single-rack ones: supply
//! share falling with height, each machine ingesting a little of its lower
//! neighbour's exhaust, uncaptured exhaust and unclaimed supply spilling
//! into the common room-air node. The continuous state is
//! `[T_cpu_0, T_box_0, …, T_room, integral_0, …, integral_{Z−1}]`.

use crate::room::{InvalidRoom, RoomConfig};
use coolopt_cooling::{CracMode, CracUnit};
use coolopt_machine::{CpuTempSensor, PowerMeter, Server};
use coolopt_sim::ode::{Dynamics, Integrator, Rk4};
use coolopt_sim::{SimClock, SimScratch, TrendDetector};
use coolopt_units::{FlowRate, Seconds, Temperature, Watts, C_AIR};
use std::cell::RefCell;
use std::ops::Range;

/// Reused air-path temporaries for the derivative evaluation.
#[derive(Debug, Clone, Default)]
struct AirBuffers {
    exhausts: Vec<Temperature>,
    flows: Vec<FlowRate>,
    inlets: Vec<Temperature>,
    returns: Vec<Temperature>,
    supplies: Vec<Temperature>,
    zone_mean_exhaust: Vec<f64>,
}

/// Instantaneous air-path view of a multi-zone room.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiZoneAirState {
    /// Per-CRAC return temperatures.
    pub returns: Vec<Temperature>,
    /// Per-CRAC supply temperatures.
    pub supplies: Vec<Temperature>,
    /// Per-server inlet temperatures (flat, zone-major).
    pub inlets: Vec<Temperature>,
}

/// The multi-zone, multi-CRAC simulated plant.
#[derive(Debug, Clone)]
pub struct MultiZoneRoom {
    servers: Vec<Server>,
    cracs: Vec<CracUnit>,
    /// Zone index of every server (zone-major layout).
    zone_of: Vec<usize>,
    /// Server-index range of every zone.
    zone_ranges: Vec<Range<usize>>,
    /// Per-server share of the zone's mixed supply stream.
    supply_fraction: Vec<f64>,
    /// Per-server fraction of the lower neighbour's exhaust (0 at the
    /// bottom of each zone).
    neighbor_recirc: Vec<f64>,
    /// Per-server exhaust capture fraction.
    capture: Vec<f64>,
    /// `cross[z][w]`: fraction of zone-z inlets drawn from zone w's mean
    /// exhaust (diagonal 0).
    cross_zone: Vec<Vec<f64>>,
    /// `supply_share[z][u]`: fraction of zone z's supply stream provided by
    /// CRAC u (rows sum to 1).
    supply_share: Vec<Vec<f64>>,
    config: RoomConfig,
    t_room: Temperature,
    clock: SimClock,
    temp_sensors: Vec<CpuTempSensor>,
    power_meters: Vec<PowerMeter>,
    ode_state: Vec<f64>,
    scratch: SimScratch,
    air_buffers: RefCell<AirBuffers>,
}

impl MultiZoneRoom {
    /// Assembles a multi-zone room.
    ///
    /// `zone_servers` is one `Vec<Server>` per zone (bottom slot first);
    /// the per-server vectors are flat in zone-major order and must match
    /// the total count. `supply_share` must be row-stochastic over the
    /// CRACs and `cross_zone` square with zero diagonal; every server's
    /// supply + neighbour + cross fractions must stay within 1.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRoom`] naming the violated rule.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        zone_servers: Vec<Vec<Server>>,
        cracs: Vec<CracUnit>,
        supply_fraction: Vec<f64>,
        neighbor_recirc: Vec<f64>,
        capture: Vec<f64>,
        supply_share: Vec<Vec<f64>>,
        cross_zone: Vec<Vec<f64>>,
        config: RoomConfig,
        sensor_seed: u64,
    ) -> Result<Self, InvalidRoom> {
        let fail = |what: String| Err(InvalidRoom::new(what));
        let z_count = zone_servers.len();
        if z_count == 0 {
            return fail("a multi-zone room needs at least one zone".into());
        }
        if cracs.len() != z_count {
            return fail(format!(
                "{z_count} zones but {} CRAC units (one per zone)",
                cracs.len()
            ));
        }
        if zone_servers.iter().any(Vec::is_empty) {
            return fail("every zone needs at least one server".into());
        }
        let n: usize = zone_servers.iter().map(Vec::len).sum();
        for (name, len) in [
            ("supply fractions", supply_fraction.len()),
            ("neighbour recirculation", neighbor_recirc.len()),
            ("capture fractions", capture.len()),
        ] {
            if len != n {
                return fail(format!("{name} cover {len} servers, room has {n}"));
            }
        }
        if supply_share.len() != z_count || cross_zone.len() != z_count {
            return fail(format!(
                "share/cross matrices must have {z_count} rows (got {} and {})",
                supply_share.len(),
                cross_zone.len()
            ));
        }
        let mut zone_of = Vec::with_capacity(n);
        let mut zone_ranges = Vec::with_capacity(z_count);
        let mut start = 0usize;
        for (z, servers) in zone_servers.iter().enumerate() {
            zone_ranges.push(start..start + servers.len());
            zone_of.resize(zone_of.len() + servers.len(), z);
            start += servers.len();
        }
        for (z, (share, cross)) in supply_share.iter().zip(&cross_zone).enumerate() {
            if share.len() != z_count || cross.len() != z_count {
                return fail(format!("share/cross row {z} must have {z_count} entries"));
            }
            if share.iter().any(|s| !(0.0..=1.0).contains(s)) {
                return fail(format!("supply-share row {z} outside [0, 1]"));
            }
            let sum: f64 = share.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return fail(format!("supply-share row {z} sums to {sum}, not 1"));
            }
            if cross[z] != 0.0 {
                return fail(format!("zone {z} cannot cross-recirculate its own exhaust"));
            }
            if cross.iter().any(|c| !(0.0..=1.0).contains(c)) {
                return fail(format!("cross-zone row {z} outside [0, 1]"));
            }
            let cross_sum: f64 = cross.iter().sum();
            for i in zone_ranges[z].clone() {
                let s = supply_fraction[i];
                let r = neighbor_recirc[i];
                if !(0.0..=1.0).contains(&s) || !(0.0..=1.0).contains(&r) {
                    return fail(format!("server {i}: air fractions outside [0, 1]"));
                }
                if i == zone_ranges[z].start && r != 0.0 {
                    return fail(format!("server {i} is a zone bottom but recirculates"));
                }
                if s + r + cross_sum > 1.0 + 1e-12 {
                    return fail(format!(
                        "server {i}: supply {s} + recirculation {r} + cross {cross_sum} > 1"
                    ));
                }
            }
        }
        if capture.iter().any(|c| !(0.0..=1.0).contains(c)) {
            return fail("capture fraction outside [0, 1]".into());
        }
        // Each CRAC must provide at least the supply air drawn through it.
        let servers: Vec<Server> = zone_servers.into_iter().flatten().collect();
        for (u, crac) in cracs.iter().enumerate() {
            let mut drawn = 0.0;
            for (i, s) in servers.iter().enumerate() {
                drawn += supply_share[zone_of[i]][u]
                    * supply_fraction[i]
                    * s.config().fan_flow.as_cubic_meters_per_second();
            }
            let provided = crac.config().flow.as_cubic_meters_per_second();
            if drawn > provided {
                return fail(format!(
                    "CRAC {u} provides {provided} m³/s but servers draw {drawn}"
                ));
            }
        }
        let t0 = config.initial_temp;
        let mut servers = servers;
        for s in &mut servers {
            s.sync_thermal_state(t0, t0);
        }
        let temp_sensors = (0..n)
            .map(|i| CpuTempSensor::with_default_noise(sensor_seed.wrapping_add(i as u64)))
            .collect();
        let power_meters = (0..n)
            .map(|i| PowerMeter::with_default_noise(sensor_seed.wrapping_add(1000 + i as u64)))
            .collect();
        let dim = 2 * n + 1 + z_count;
        Ok(MultiZoneRoom {
            servers,
            cracs,
            zone_of,
            zone_ranges,
            supply_fraction,
            neighbor_recirc,
            capture,
            cross_zone,
            supply_share,
            config,
            t_room: t0,
            clock: SimClock::new(config.dt),
            temp_sensors,
            power_meters,
            ode_state: Vec::with_capacity(dim),
            scratch: SimScratch::with_dim(dim),
            air_buffers: RefCell::new(AirBuffers::default()),
        })
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the room holds no servers (never after construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Number of zones (= CRAC units).
    pub fn zone_count(&self) -> usize {
        self.cracs.len()
    }

    /// The servers, flat in zone-major order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Mutable access to one server.
    pub fn server_mut(&mut self, i: usize) -> &mut Server {
        &mut self.servers[i]
    }

    /// The CRAC units, zone order.
    pub fn cracs(&self) -> &[CracUnit] {
        &self.cracs
    }

    /// Mutable access to zone `u`'s CRAC.
    pub fn crac_mut(&mut self, u: usize) -> &mut CracUnit {
        &mut self.cracs[u]
    }

    /// Zone index of server `i`.
    pub fn zone_of(&self, i: usize) -> usize {
        self.zone_of[i]
    }

    /// Server-index range of zone `z`.
    pub fn zone_range(&self, z: usize) -> Range<usize> {
        self.zone_ranges[z].clone()
    }

    /// The room configuration.
    pub fn config(&self) -> &RoomConfig {
        &self.config
    }

    /// Room-air temperature.
    pub fn room_temp(&self) -> Temperature {
        self.t_room
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    /// Commands every CRAC into fixed-supply mode at the given temperatures
    /// (the planner's per-zone `T_ac` decision).
    ///
    /// # Panics
    ///
    /// Panics if the vector length disagrees with the zone count.
    pub fn set_fixed_supplies(&mut self, supplies: &[Temperature]) {
        assert_eq!(supplies.len(), self.cracs.len(), "one supply per CRAC");
        for (crac, &t) in self.cracs.iter_mut().zip(supplies) {
            crac.set_mode(CracMode::FixedSupply(t));
        }
    }

    /// Commands every CRAC's return set point (the conventional mode).
    ///
    /// # Panics
    ///
    /// Panics if the vector length disagrees with the zone count.
    pub fn set_set_points(&mut self, set_points: &[Temperature]) {
        assert_eq!(set_points.len(), self.cracs.len(), "one set point per CRAC");
        for (crac, &t) in self.cracs.iter_mut().zip(set_points) {
            crac.set_mode(CracMode::ReturnSetPoint(t));
        }
    }

    /// Powers every machine on instantly (skipping boot) with zero load.
    pub fn force_all_on(&mut self) {
        for s in &mut self.servers {
            s.force_on();
        }
    }

    /// Commands per-server load fractions (flat, zone-major).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`coolopt_machine::server::InvalidLoad`] if
    /// any fraction is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the vector length disagrees with the server count.
    pub fn set_loads(&mut self, loads: &[f64]) -> Result<(), coolopt_machine::server::InvalidLoad> {
        assert_eq!(loads.len(), self.servers.len(), "load vector size mismatch");
        for (s, &l) in self.servers.iter_mut().zip(loads) {
            s.set_load(l)?;
        }
        Ok(())
    }

    /// Total electrical power of the computing side.
    pub fn computing_power(&self) -> Watts {
        self.servers.iter().map(|s| s.power_draw()).sum()
    }

    /// Electrical power of all cooling units.
    pub fn cooling_power(&self) -> Watts {
        let state = self.air_state();
        self.cracs
            .iter()
            .zip(&state.returns)
            .map(|(crac, &t_ret)| crac.electrical_power(t_ret, crac.integral()))
            .sum()
    }

    /// Total room power: computing + cooling.
    pub fn total_power(&self) -> Watts {
        self.computing_power() + self.cooling_power()
    }

    /// Reads server `i`'s CPU temperature through its noisy sensor.
    pub fn read_cpu_temp(&mut self, i: usize) -> Temperature {
        let t = self.servers[i].cpu_temp();
        self.temp_sensors[i].read(t)
    }

    /// Reads server `i`'s power draw through its noisy meter.
    pub fn read_power(&mut self, i: usize) -> Watts {
        let p = self.servers[i].power_draw();
        self.power_meters[i].read(p)
    }

    /// Instantaneous air-path temperatures for the current state.
    pub fn air_state(&self) -> MultiZoneAirState {
        let exhausts: Vec<Temperature> = self.servers.iter().map(|s| s.exhaust_temp()).collect();
        let flows: Vec<FlowRate> = self.servers.iter().map(|s| s.air_flow()).collect();
        let integrals: Vec<f64> = self.cracs.iter().map(|c| c.integral()).collect();
        let mut returns = Vec::new();
        let mut supplies = Vec::new();
        let mut inlets = Vec::new();
        let mut zone_means = Vec::new();
        self.air_paths(
            &exhausts,
            &flows,
            self.t_room,
            &integrals,
            &mut returns,
            &mut supplies,
            &mut inlets,
            &mut zone_means,
        );
        MultiZoneAirState {
            returns,
            supplies,
            inlets,
        }
    }

    /// Computes per-CRAC returns and supplies, then per-server inlets, into
    /// the output buffers (cleared first).
    #[allow(clippy::too_many_arguments)]
    fn air_paths(
        &self,
        exhausts: &[Temperature],
        flows: &[FlowRate],
        t_room: Temperature,
        integrals: &[f64],
        returns: &mut Vec<Temperature>,
        supplies: &mut Vec<Temperature>,
        inlets: &mut Vec<Temperature>,
        zone_mean_exhaust: &mut Vec<f64>,
    ) {
        let z_count = self.cracs.len();
        returns.clear();
        supplies.clear();
        inlets.clear();
        zone_mean_exhaust.clear();
        for range in &self.zone_ranges {
            let mean = exhausts[range.clone()]
                .iter()
                .map(|t| t.as_kelvin())
                .sum::<f64>()
                / range.len() as f64;
            zone_mean_exhaust.push(mean);
        }
        // Per-CRAC return: each zone's captured exhaust flows back through
        // the units in proportion to the supply shares; the rest of the
        // CRAC's draw is room-air makeup (AirDistribution's rule per unit).
        for (u, integral) in integrals.iter().enumerate().take(z_count) {
            let mut captured_flow = 0.0;
            let mut captured_heat = 0.0;
            for (i, (t, f)) in exhausts.iter().zip(flows).enumerate() {
                let share = self.supply_share[self.zone_of[i]][u];
                if share > 0.0 {
                    let cf = share * self.capture[i] * f.as_cubic_meters_per_second();
                    captured_flow += cf;
                    captured_heat += cf * t.as_kelvin();
                }
            }
            let f_ac = self.cracs[u].config().flow.as_cubic_meters_per_second();
            let t_return = if captured_flow >= f_ac {
                Temperature::from_kelvin(captured_heat / captured_flow)
            } else {
                Temperature::from_kelvin(
                    (captured_heat + (f_ac - captured_flow) * t_room.as_kelvin()) / f_ac,
                )
            };
            returns.push(t_return);
            supplies.push(self.cracs[u].supply_temp(t_return, *integral));
        }
        // Inlets: zone supply mix + lower-neighbour exhaust + cross-zone
        // mean exhaust + room-air remainder.
        for (i, _) in exhausts.iter().enumerate() {
            let z = self.zone_of[i];
            let t_mix: f64 = self.supply_share[z]
                .iter()
                .zip(supplies.iter())
                .map(|(s, t)| s * t.as_kelvin())
                .sum();
            let s = self.supply_fraction[i];
            let r = self.neighbor_recirc[i];
            let mut kelvin = s * t_mix;
            if r > 0.0 {
                kelvin += r * exhausts[i - 1].as_kelvin();
            }
            let mut drawn = s + r;
            for (w, &x) in self.cross_zone[z].iter().enumerate() {
                if x > 0.0 {
                    kelvin += x * zone_mean_exhaust[w];
                    drawn += x;
                }
            }
            kelvin += (1.0 - drawn) * t_room.as_kelvin();
            inlets.push(Temperature::from_kelvin(kelvin));
        }
    }

    fn dim_internal(&self) -> usize {
        2 * self.servers.len() + 1 + self.cracs.len()
    }

    fn pack_state_into(&self, x: &mut Vec<f64>) {
        x.clear();
        for s in &self.servers {
            x.push(s.cpu_temp().as_kelvin());
            x.push(s.exhaust_temp().as_kelvin());
        }
        x.push(self.t_room.as_kelvin());
        for c in &self.cracs {
            x.push(c.integral());
        }
    }

    fn unpack_state(&mut self, x: &[f64]) {
        let n = self.servers.len();
        for (i, s) in self.servers.iter_mut().enumerate() {
            s.sync_thermal_state(
                Temperature::from_kelvin(x[2 * i]),
                Temperature::from_kelvin(x[2 * i + 1]),
            );
        }
        self.t_room = Temperature::from_kelvin(x[2 * n]);
        for (u, c) in self.cracs.iter_mut().enumerate() {
            c.sync_integral(x[2 * n + 1 + u]);
        }
    }

    /// Advances the simulation by one step `dt` (allocation-free hot path,
    /// as in [`crate::room::MachineRoom::step`]).
    pub fn step(&mut self) {
        let mut state = std::mem::take(&mut self.ode_state);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.pack_state_into(&mut state);
        let t = self.clock.now();
        let dt = self.clock.dt();
        Rk4::new().step_with(&*self, t, dt, &mut state, &mut scratch);
        self.unpack_state(&state);
        for s in &mut self.servers {
            s.advance(dt.as_secs_f64());
        }
        self.clock.tick();
        self.ode_state = state;
        self.scratch = scratch;
    }

    /// Runs the simulation for (at least) `duration`.
    pub fn run_for(&mut self, duration: Seconds) {
        let n = self.clock.ticks_for(duration);
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until total power and the hottest CPU are trend-steady, or
    /// until `max` simulated time elapses. Returns `true` on steady state.
    pub fn settle(&mut self, max: Seconds, power_tol: f64) -> bool {
        let mut power = TrendDetector::new(120, power_tol);
        let mut temp = TrendDetector::new(120, 0.2);
        let n = self.clock.ticks_for(max);
        for _ in 0..n {
            self.step();
            power.observe(self.total_power().as_watts());
            let hottest = self
                .servers
                .iter()
                .map(|s| s.cpu_temp().as_kelvin())
                .fold(f64::NEG_INFINITY, f64::max);
            temp.observe(hottest);
            if power.is_steady() && temp.is_steady() {
                return true;
            }
        }
        false
    }
}

impl Dynamics for MultiZoneRoom {
    fn dim(&self) -> usize {
        self.dim_internal()
    }

    fn derivatives(&self, _t: Seconds, x: &[f64], dx: &mut [f64]) {
        let n = self.servers.len();
        let z_count = self.cracs.len();
        let t_room = Temperature::from_kelvin(x[2 * n]);
        let integrals = &x[2 * n + 1..2 * n + 1 + z_count];

        // Borrow the reused air-path temporaries for the whole evaluation;
        // nothing below re-enters `derivatives`, so the RefCell never
        // double-borrows.
        let mut buffers = self.air_buffers.borrow_mut();
        let AirBuffers {
            exhausts,
            flows,
            inlets,
            returns,
            supplies,
            zone_mean_exhaust,
        } = &mut *buffers;
        exhausts.clear();
        flows.clear();
        for (i, s) in self.servers.iter().enumerate() {
            exhausts.push(Temperature::from_kelvin(x[2 * i + 1]));
            flows.push(s.air_flow());
        }
        self.air_paths(
            exhausts,
            flows,
            t_room,
            integrals,
            returns,
            supplies,
            inlets,
            zone_mean_exhaust,
        );

        let mut spilled_heat = Watts::ZERO;
        for (i, server) in self.servers.iter().enumerate() {
            let t_cpu = Temperature::from_kelvin(x[2 * i]);
            let t_box = exhausts[i];
            let (d_cpu, d_box) = server.thermal_rates(inlets[i], t_cpu, t_box);
            dx[2 * i] = d_cpu.as_kelvin_per_second();
            dx[2 * i + 1] = d_box.as_kelvin_per_second();
            let spill_conductance = (flows[i] * (1.0 - self.capture[i])) * C_AIR;
            spilled_heat += spill_conductance * (t_box - t_room);
        }

        // Supply air not drawn through each CRAC spills into the room at
        // that unit's supply temperature.
        let mut supply_spill = Watts::ZERO;
        for (u, crac) in self.cracs.iter().enumerate() {
            let mut drawn = 0.0;
            for (i, f) in flows.iter().enumerate() {
                drawn += self.supply_share[self.zone_of[i]][u]
                    * self.supply_fraction[i]
                    * f.as_cubic_meters_per_second();
            }
            let excess = FlowRate::cubic_meters_per_second(
                (crac.config().flow.as_cubic_meters_per_second() - drawn).max(0.0),
            );
            supply_spill += (excess * C_AIR) * (supplies[u] - t_room);
        }
        let envelope_gain = self.config.envelope.heat_gain(t_room);

        let room_heat = spilled_heat + supply_spill + envelope_gain;
        dx[2 * n] = (room_heat / self.config.room_air_capacity).as_kelvin_per_second();
        for (u, crac) in self.cracs.iter().enumerate() {
            dx[2 * n + 1 + u] = crac.integral_rate(returns[u], integrals[u]);
        }
    }
}
