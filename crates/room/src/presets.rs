//! Ready-made machine rooms, including the paper's 20-machine testbed.
//!
//! Since the scenarios-as-data refactor these presets are thin wrappers:
//! each one emits a [`coolopt_scenario::Scenario`] document (via
//! [`coolopt_scenario::presets`]) and materializes it through
//! [`crate::scenario::materialize_machine_room`]. Loading the equivalent
//! JSON file from `scenarios/` produces a bit-identical room — that identity
//! is pinned by regression tests in [`crate::scenario`].

use crate::airflow::AirDistribution;
use crate::geometry::Rack;
use crate::room::{MachineRoom, RoomConfig};
use crate::scenario::materialize_machine_room;
use coolopt_cooling::{CracConfig, CracUnit};
use coolopt_machine::{Server, ServerId};
use coolopt_units::Temperature;

pub use coolopt_scenario::RackOptions;

/// Builds the evaluation testbed: a rack of 20 R210-like machines cooled by
/// one Challenger-like CRAC, mirroring the paper's §IV setup.
///
/// Machines lower in the rack receive a larger share of the supply stream
/// (they sit in a "cooler spot", which is why the paper's bottom-up baseline
/// fills the rack bottom first); upper machines ingest a little of their
/// lower neighbour's exhaust. Per-machine manufacturing variation is drawn
/// deterministically from `seed`, so two rooms built with the same seed are
/// byte-for-byte identical in behaviour.
pub fn testbed_rack20(seed: u64) -> MachineRoom {
    parametric_rack(20, seed)
}

/// A smaller rack for fast unit tests; same structure as
/// [`testbed_rack20`], scaled down.
pub fn small_rack(n: usize, seed: u64) -> MachineRoom {
    parametric_rack(n, seed)
}

/// Builds a rack of `n` machines with position-dependent air distribution.
///
/// # Panics
///
/// Panics if `n == 0` or if `n` is large enough that the servers would
/// demand more supply air than the CRAC provides (n ≳ 60 with the default
/// configuration).
pub fn parametric_rack(n: usize, seed: u64) -> MachineRoom {
    parametric_rack_with(RackOptions {
        machines: n,
        seed,
        ..RackOptions::default()
    })
}

/// Builds a rack with explicit air-distribution knobs (used by the
/// ablation studies).
///
/// # Panics
///
/// Same conditions as [`parametric_rack`], plus unphysical option values
/// (negative scales, supply span outside `[0, 0.9]`).
pub fn parametric_rack_with(options: RackOptions) -> MachineRoom {
    assert!(options.machines > 0, "rack must hold at least one machine");
    assert!(
        (0.0..=2.5).contains(&options.recirculation_scale),
        "recirculation scale {} out of range",
        options.recirculation_scale
    );
    assert!(
        (0.0..=0.9).contains(&options.supply_span),
        "supply span {} out of range",
        options.supply_span
    );
    assert!(
        options.supply_span < options.base_supply && options.base_supply <= 0.95,
        "base supply {} must exceed the span and stay below 0.95",
        options.base_supply
    );
    assert!(
        (0.0..=1.0).contains(&options.jitter_scale),
        "jitter scale {} out of range",
        options.jitter_scale
    );
    let scenario = coolopt_scenario::presets::single_zone(options);
    materialize_machine_room(&scenario).expect("preset scenario materializes")
}

/// Two racks in one room at different distances from the CRAC — the "within
/// or across racks" situation the paper contrasts itself against rack-level
/// schemes with. The near rack (machines `0..n_per_rack`) sits under the
/// vent (supply share 0.92 → 0.72); the far rack (`n_per_rack..2·n_per_rack`)
/// across the aisle sees a weaker stream (0.60 → 0.40).
///
/// # Panics
///
/// Panics if `n_per_rack == 0`.
pub fn dual_zone_room(n_per_rack: usize, seed: u64) -> MachineRoom {
    assert!(n_per_rack > 0, "each rack must hold at least one machine");
    let near = parametric_rack_with(RackOptions {
        machines: n_per_rack,
        seed,
        supply_span: 0.20,
        base_supply: 0.92,
        ..RackOptions::default()
    });
    // Same seed as the near rack: slot-for-slot identical manufacturing
    // jitter, so near/far comparisons isolate the *positional* effect.
    let far = parametric_rack_with(RackOptions {
        machines: n_per_rack,
        seed,
        supply_span: 0.20,
        base_supply: 0.60,
        ..RackOptions::default()
    });

    // Recombine into one room: concatenate server configs, air paths and
    // geometry, renumbering machines into the combined index space.
    let n = 2 * n_per_rack;
    let mut servers = Vec::with_capacity(n);
    let mut supply = Vec::with_capacity(n);
    let mut capture = Vec::with_capacity(n);
    let mut recirc = vec![vec![0.0; n]; n];
    for (offset, room) in [(0usize, &near), (n_per_rack, &far)] {
        for (i, server) in room.servers().iter().enumerate() {
            let combined = offset + i;
            servers.push(Server::new(
                ServerId(combined),
                *server.config(),
                seed.wrapping_add(combined as u64),
                Temperature::from_celsius(24.0),
            ));
            supply.push(room.air_distribution().supply_fraction(i));
            capture.push(room.air_distribution().capture_fraction(i));
            if i > 0 {
                // Preserve each rack's internal neighbour recirculation.
                recirc[combined][combined - 1] = 0.04 + 0.04 * room.rack().relative_height(i);
            }
        }
    }
    let air =
        AirDistribution::new(supply, recirc, capture).expect("combined air distribution is valid");
    let rack = Rack::new_1u(n, 0.2);
    let crac = CracUnit::new(CracConfig::challenger_like());
    MachineRoom::new(servers, crac, air, rack, RoomConfig::default(), seed)
        .expect("dual-zone room is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_zone_room_has_a_clear_near_far_split() {
        // Ten machines per rack: enough aggregate heat that the CRAC's
        // supply/return spread — and with it the positional signal — stands
        // clear of the per-server process noise (~±0.4 °C instantaneous).
        let room = dual_zone_room(10, 3);
        assert_eq!(room.len(), 20);
        let air = room.air_distribution();
        // Every near-rack machine draws more supply air than any far one.
        let near_min = (0..10)
            .map(|i| air.supply_fraction(i))
            .fold(f64::INFINITY, f64::min);
        let far_max = (10..20)
            .map(|i| air.supply_fraction(i))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            near_min > far_max,
            "near rack min {near_min} should exceed far rack max {far_max}"
        );
        // And the far rack really runs warmer at equal load.
        use coolopt_units::Seconds;
        let mut room = room;
        room.force_all_on();
        room.set_loads(&[0.8; 20]).unwrap();
        room.set_set_point(Temperature::from_celsius(17.0));
        assert!(room.settle(Seconds::new(6000.0), 5.0));
        // Slot-for-slot paired comparison (same manufacturing jitter in both
        // racks by construction): no far machine runs clearly cooler than its
        // near twin, and on average the far rack is distinctly warmer.
        let mut mean_gap = 0.0;
        for i in 0..10 {
            let near_t = room.servers()[i].cpu_temp();
            let far_t = room.servers()[i + 10].cpu_temp();
            let gap = far_t.as_celsius() - near_t.as_celsius();
            assert!(
                gap > -0.5,
                "far twin {i} at {far_t} well below near {near_t}"
            );
            mean_gap += gap / 10.0;
        }
        assert!(
            mean_gap > 0.3,
            "far rack should be clearly warmer on average, gap was {mean_gap:.2} °C"
        );
    }

    #[test]
    fn testbed_has_twenty_machines() {
        let room = testbed_rack20(1);
        assert_eq!(room.len(), 20);
        assert_eq!(room.rack().len(), 20);
    }

    #[test]
    fn same_seed_same_room_different_seed_different_room() {
        let a = testbed_rack20(5);
        let b = testbed_rack20(5);
        let c = testbed_rack20(6);
        for i in 0..20 {
            assert_eq!(
                a.servers()[i].config().fan_flow,
                b.servers()[i].config().fan_flow
            );
        }
        assert!(
            (0..20).any(|i| a.servers()[i].config().fan_flow != c.servers()[i].config().fan_flow)
        );
    }

    #[test]
    fn bottom_machines_get_more_supply_air() {
        let room = testbed_rack20(2);
        let air = room.air_distribution();
        assert!(air.supply_fraction(0) > air.supply_fraction(19));
        assert!(air.supply_fraction(0) > 0.9);
        assert!(air.supply_fraction(19) < 0.5);
    }

    #[test]
    fn bottom_machines_really_run_cooler() {
        use coolopt_units::Seconds;
        // CPU temperatures carry per-machine manufacturing jitter *larger*
        // than the positional inlet signal (±5 % on the CPU conductance is
        // ~±1.9 °C at full load, the inlet spread under 1 °C), so the claim
        // is only testable with identical machines: a jitter-free rack with
        // a wide supply span, averaged over seeds to damp process noise.
        let mut gap_sum = 0.0;
        for seed in [9, 10, 11] {
            let mut room = parametric_rack_with(RackOptions {
                machines: 12,
                seed,
                supply_span: 0.8,
                base_supply: 0.9,
                jitter_scale: 0.0,
                ..RackOptions::default()
            });
            room.force_all_on();
            room.set_loads(&[0.7; 12]).unwrap();
            room.set_set_point(Temperature::from_celsius(25.0));
            assert!(room.settle(Seconds::new(6000.0), 5.0));
            // Inlet air is strictly cooler lower in the rack by construction.
            let air = room.air_state();
            assert!(
                air.inlets[0] < air.inlets[11],
                "bottom inlet {} should be cooler than top inlet {}",
                air.inlets[0],
                air.inlets[11]
            );
            let mean = |range: std::ops::Range<usize>| {
                let len = range.len() as f64;
                range
                    .map(|i| room.servers()[i].cpu_temp().as_celsius())
                    .sum::<f64>()
                    / len
            };
            gap_sum += mean(6..12) - mean(0..6);
        }
        let mean_gap = gap_sum / 3.0;
        assert!(
            mean_gap > 0.2,
            "top half should average {mean_gap:.2} °C > 0.2 °C warmer than bottom half"
        );
    }
}
