//! Air distribution: how supply air, recirculated exhaust and room air mix
//! at each server's inlet, and what the CRAC's return stream sees.

use coolopt_units::{FlowRate, Temperature};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned for a physically impossible air-distribution description.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidAirDistribution {
    what: String,
}

impl fmt::Display for InvalidAirDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid air distribution: {}", self.what)
    }
}

impl std::error::Error for InvalidAirDistribution {}

/// Mixing description for `n` servers.
///
/// Server `i`'s intake is a convex combination of the supply stream
/// (fraction `supply_fraction[i]` — the physical origin of the paper's
/// `α_i`), other servers' exhausts (`recirculation[i][j]`), and room air
/// (the remainder). Each server's exhaust is captured by the return duct
/// with `capture_fraction[i]`; the rest spills into the room.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirDistribution {
    supply_fraction: Vec<f64>,
    recirculation: Vec<Vec<f64>>,
    capture_fraction: Vec<f64>,
}

impl AirDistribution {
    /// Validates and constructs a distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAirDistribution`] when the dimensions disagree, any
    /// fraction lies outside `[0, 1]`, a server recirculates its own exhaust
    /// (`recirculation[i][i] != 0`), or a row's supply + recirculation
    /// fractions exceed 1.
    pub fn new(
        supply_fraction: Vec<f64>,
        recirculation: Vec<Vec<f64>>,
        capture_fraction: Vec<f64>,
    ) -> Result<Self, InvalidAirDistribution> {
        let n = supply_fraction.len();
        let fail = |what: String| Err(InvalidAirDistribution { what });
        if recirculation.len() != n || capture_fraction.len() != n {
            return fail(format!(
                "dimension mismatch: supply {n}, recirculation {}, capture {}",
                recirculation.len(),
                capture_fraction.len()
            ));
        }
        for (i, row) in recirculation.iter().enumerate() {
            if row.len() != n {
                return fail(format!("recirculation row {i} has length {}", row.len()));
            }
            if row[i] != 0.0 {
                return fail(format!("server {i} cannot recirculate its own exhaust"));
            }
            let r_sum: f64 = row.iter().sum();
            if row.iter().any(|&r| !(0.0..=1.0).contains(&r)) {
                return fail(format!("recirculation row {i} has fraction outside [0,1]"));
            }
            let s = supply_fraction[i];
            if !(0.0..=1.0).contains(&s) {
                return fail(format!("supply fraction {s} of server {i} outside [0,1]"));
            }
            if s + r_sum > 1.0 + 1e-12 {
                return fail(format!(
                    "server {i}: supply + recirculation = {} exceeds 1",
                    s + r_sum
                ));
            }
        }
        if capture_fraction.iter().any(|&c| !(0.0..=1.0).contains(&c)) {
            return fail("capture fraction outside [0,1]".to_string());
        }
        Ok(AirDistribution {
            supply_fraction,
            recirculation,
            capture_fraction,
        })
    }

    /// A uniform distribution: every server draws `supply` from the CRAC
    /// stream and the rest from room air; no direct recirculation;
    /// `capture` of every exhaust returns to the duct.
    pub fn uniform(n: usize, supply: f64, capture: f64) -> Result<Self, InvalidAirDistribution> {
        AirDistribution::new(vec![supply; n], vec![vec![0.0; n]; n], vec![capture; n])
    }

    /// Number of servers described.
    pub fn len(&self) -> usize {
        self.supply_fraction.len()
    }

    /// `true` when describing zero servers.
    pub fn is_empty(&self) -> bool {
        self.supply_fraction.is_empty()
    }

    /// Supply fraction of server `i`.
    pub fn supply_fraction(&self, i: usize) -> f64 {
        self.supply_fraction[i]
    }

    /// Capture fraction of server `i`.
    pub fn capture_fraction(&self, i: usize) -> f64 {
        self.capture_fraction[i]
    }

    /// Inlet temperature of every server for the given supply temperature,
    /// exhaust temperatures and room-air temperature.
    pub fn inlet_temps(
        &self,
        t_supply: Temperature,
        exhausts: &[Temperature],
        t_room: Temperature,
    ) -> Vec<Temperature> {
        let mut out = Vec::with_capacity(self.len());
        self.inlet_temps_into(t_supply, exhausts, t_room, &mut out);
        out
    }

    /// Like [`AirDistribution::inlet_temps`], but writes into `out`
    /// (cleared first) so simulation hot loops can reuse one buffer instead
    /// of allocating per derivative evaluation.
    pub fn inlet_temps_into(
        &self,
        t_supply: Temperature,
        exhausts: &[Temperature],
        t_room: Temperature,
        out: &mut Vec<Temperature>,
    ) {
        assert_eq!(exhausts.len(), self.len(), "exhaust vector size mismatch");
        out.clear();
        for i in 0..self.len() {
            let s = self.supply_fraction[i];
            let mut kelvin = s * t_supply.as_kelvin();
            let mut r_sum = 0.0;
            for (j, &r) in self.recirculation[i].iter().enumerate() {
                if r > 0.0 {
                    kelvin += r * exhausts[j].as_kelvin();
                    r_sum += r;
                }
            }
            kelvin += (1.0 - s - r_sum) * t_room.as_kelvin();
            out.push(Temperature::from_kelvin(kelvin));
        }
    }

    /// Temperature of the CRAC's return stream: captured exhausts (weighted
    /// by their flow) topped up with room air to fill the CRAC flow.
    pub fn return_temp(
        &self,
        exhausts: &[Temperature],
        flows: &[FlowRate],
        t_room: Temperature,
        crac_flow: FlowRate,
    ) -> Temperature {
        assert_eq!(exhausts.len(), self.len(), "exhaust vector size mismatch");
        assert_eq!(flows.len(), self.len(), "flow vector size mismatch");
        let f_ac = crac_flow.as_cubic_meters_per_second();
        assert!(f_ac > 0.0, "CRAC flow must be positive");
        let mut captured_flow = 0.0;
        let mut captured_heat = 0.0; // flow-weighted temperature
        for i in 0..self.len() {
            let f = flows[i].as_cubic_meters_per_second() * self.capture_fraction[i];
            captured_flow += f;
            captured_heat += f * exhausts[i].as_kelvin();
        }
        // If servers push more captured air than the CRAC draws, the duct
        // overflows into the room; the return is then pure (scaled) exhaust.
        if captured_flow >= f_ac {
            return Temperature::from_kelvin(captured_heat / captured_flow);
        }
        let makeup = f_ac - captured_flow;
        Temperature::from_kelvin((captured_heat + makeup * t_room.as_kelvin()) / f_ac)
    }

    /// Total supply flow drawn directly by the servers (must not exceed the
    /// CRAC flow; checked by [`crate::room::MachineRoom`] construction).
    pub fn supply_flow_demand(&self, flows: &[FlowRate]) -> FlowRate {
        assert_eq!(flows.len(), self.len(), "flow vector size mismatch");
        FlowRate::cubic_meters_per_second(
            self.supply_fraction
                .iter()
                .zip(flows)
                .map(|(s, f)| s * f.as_cubic_meters_per_second())
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: f64) -> Temperature {
        Temperature::from_celsius(c)
    }

    #[test]
    fn uniform_inlets_interpolate_supply_and_room() {
        let d = AirDistribution::uniform(3, 0.8, 0.9).unwrap();
        let inlets = d.inlet_temps(t(10.0), &[t(30.0); 3], t(20.0));
        for inlet in inlets {
            assert!((inlet.as_celsius() - (0.8 * 10.0 + 0.2 * 20.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn recirculation_warms_the_inlet() {
        let d = AirDistribution::new(
            vec![0.8, 0.8],
            vec![vec![0.0, 0.1], vec![0.0, 0.0]],
            vec![0.9, 0.9],
        )
        .unwrap();
        let inlets = d.inlet_temps(t(10.0), &[t(35.0), t(40.0)], t(20.0));
        // Server 0 sees 0.8·10 + 0.1·40 + 0.1·20 = 14 °C.
        assert!((inlets[0].as_celsius() - 14.0).abs() < 1e-9);
        // Server 1 sees 0.8·10 + 0.2·20 = 12 °C.
        assert!((inlets[1].as_celsius() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn return_mixes_captured_exhaust_with_room_air() {
        let d = AirDistribution::uniform(2, 0.5, 0.5).unwrap();
        let flows = [FlowRate::cubic_meters_per_second(0.1); 2];
        // Captured: 0.5·0.1·2 = 0.1 m³/s of 40 °C; makeup 0.9 m³/s of 20 °C.
        let ret = d.return_temp(
            &[t(40.0), t(40.0)],
            &flows,
            t(20.0),
            FlowRate::cubic_meters_per_second(1.0),
        );
        assert!((ret.as_celsius() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn overflowing_duct_returns_pure_exhaust_mix() {
        let d = AirDistribution::uniform(1, 0.5, 1.0).unwrap();
        let ret = d.return_temp(
            &[t(42.0)],
            &[FlowRate::cubic_meters_per_second(2.0)],
            t(20.0),
            FlowRate::cubic_meters_per_second(1.0),
        );
        assert!((ret.as_celsius() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn supply_demand_is_flow_weighted() {
        let d = AirDistribution::new(
            vec![0.5, 1.0],
            vec![vec![0.0, 0.0], vec![0.0, 0.0]],
            vec![1.0, 1.0],
        )
        .unwrap();
        let demand = d.supply_flow_demand(&[
            FlowRate::cubic_meters_per_second(0.04),
            FlowRate::cubic_meters_per_second(0.02),
        ]);
        assert!((demand.as_cubic_meters_per_second() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        // Self-recirculation.
        assert!(AirDistribution::new(vec![0.5], vec![vec![0.1]], vec![1.0]).is_err());
        // Row exceeding 1.
        assert!(AirDistribution::new(
            vec![0.9, 0.9],
            vec![vec![0.0, 0.2], vec![0.0, 0.0]],
            vec![1.0, 1.0],
        )
        .is_err());
        // Fraction out of range.
        assert!(AirDistribution::uniform(2, 1.5, 0.5).is_err());
        assert!(AirDistribution::uniform(2, 0.5, -0.1).is_err());
        // Dimension mismatch.
        assert!(AirDistribution::new(vec![0.5], vec![], vec![1.0]).is_err());
    }
}
