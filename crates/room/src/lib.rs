//! The simulated machine room: servers + CRAC + air paths + envelope.
//!
//! This crate composes the pieces of the substrate into the system the
//! paper's testbed was: a rack of servers in a small machine room whose
//! cooling unit supplies cool air (from the ceiling, in the paper) and
//! regulates the return air at a set point. The composition is a single ODE
//! system (one state vector holding every server's CPU and box-air
//! temperature, the room air node, and the CRAC's control-integral state)
//! driven by [`coolopt_sim`]'s integrators.
//!
//! Physical structure (all heat flows in watts):
//!
//! * each server draws its intake partly from the **supply stream**
//!   (fraction `s_i`, position-dependent — this is where the paper's `α_i`
//!   comes from), partly from neighbouring **exhausts** (recirculation
//!   matrix `r_ij`), and the rest from the **room air**;
//! * a fraction of each server's exhaust is captured by the return duct, the
//!   rest spills into the room;
//! * the room exchanges heat with the building envelope
//!   (`U_env · (T_amb − T_room)`) and carries a constant auxiliary load —
//!   this term closes the energy balance and is the physical reason a higher
//!   supply temperature cheapens cooling;
//! * the CRAC's return stream mixes captured exhausts with room air.
//!
//! The [`presets::testbed_rack20`] function instantiates the 20-machine rack
//! used throughout the evaluation.

#![warn(missing_docs)]

pub mod airflow;
pub mod envelope;
pub mod geometry;
pub mod measurement;
pub mod multizone;
pub mod presets;
pub mod room;
pub mod scenario;

pub use airflow::AirDistribution;
pub use envelope::Envelope;
pub use geometry::{Rack, RackSlot};
pub use measurement::{RoomObservation, SteadyMeasurement};
pub use multizone::{MultiZoneAirState, MultiZoneRoom};
pub use room::{MachineRoom, RoomConfig};
pub use scenario::{materialize, materialize_machine_room, MaterializedRoom};
