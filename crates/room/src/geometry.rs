//! Rack geometry.
//!
//! The paper's machines differ thermally only through their position on the
//! rack ("this is due to the difference in the relative position of machines
//! on our rack"). Geometry is therefore deliberately simple: a rack is a
//! vertical stack of slots; a slot's height determines how much of the
//! CRAC's supply stream reaches it.

use serde::{Deserialize, Serialize};

/// Height of one rack unit in metres (1U ≈ 44.45 mm).
pub const RACK_UNIT_METERS: f64 = 0.04445;

/// One slot of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSlot {
    /// Slot index, 0 = bottom of the rack.
    pub index: usize,
    /// Height of the slot's centre above the floor (m).
    pub height_m: f64,
}

/// A vertical rack of equally spaced slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rack {
    slots: Vec<RackSlot>,
}

impl Rack {
    /// Creates a rack of `n` 1U slots whose first slot centre sits at
    /// `base_height_m`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `base_height_m` is negative.
    pub fn new_1u(n: usize, base_height_m: f64) -> Self {
        assert!(n > 0, "a rack must have at least one slot");
        assert!(base_height_m >= 0.0, "base height must be non-negative");
        let slots = (0..n)
            .map(|index| RackSlot {
                index,
                height_m: base_height_m + index as f64 * RACK_UNIT_METERS,
            })
            .collect();
        Rack { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the rack has no slots (never true for a constructed rack).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slots, bottom first.
    pub fn slots(&self) -> &[RackSlot] {
        &self.slots
    }

    /// A slot's height normalized to `[0, 1]` (0 = bottom slot, 1 = top).
    pub fn relative_height(&self, index: usize) -> f64 {
        if self.slots.len() == 1 {
            return 0.0;
        }
        index as f64 / (self.slots.len() - 1) as f64
    }

    /// Iterator over the slots.
    pub fn iter(&self) -> impl Iterator<Item = &RackSlot> {
        self.slots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_evenly_spaced() {
        let rack = Rack::new_1u(4, 0.2);
        assert_eq!(rack.len(), 4);
        assert!(!rack.is_empty());
        let heights: Vec<f64> = rack.iter().map(|s| s.height_m).collect();
        for w in heights.windows(2) {
            assert!((w[1] - w[0] - RACK_UNIT_METERS).abs() < 1e-12);
        }
        assert!((heights[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn relative_height_spans_unit_interval() {
        let rack = Rack::new_1u(20, 0.0);
        assert_eq!(rack.relative_height(0), 0.0);
        assert_eq!(rack.relative_height(19), 1.0);
        assert!((rack.relative_height(10) - 10.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn single_slot_rack_is_at_zero() {
        let rack = Rack::new_1u(1, 0.5);
        assert_eq!(rack.relative_height(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_rack_panics() {
        Rack::new_1u(0, 0.0);
    }
}
