//! Building envelope and auxiliary heat loads.
//!
//! The paper's machine room sits inside a warmer building; heat leaks in
//! through walls and doors, and other equipment (switches, lighting, the
//! paper mentions none explicitly but any real machine room has some)
//! contributes a roughly constant load. This term closes the room's energy
//! balance: at steady state the CRAC extracts the servers' heat *plus* the
//! envelope gain, and because the gain shrinks as the room warms, raising
//! the supply temperature genuinely reduces cooling energy — the physical
//! mechanism behind the paper's `P_ac = c·f_ac·(T_SP − T_ac)` savings model.

use coolopt_units::{Conductance, Temperature, Watts};
use serde::{Deserialize, Serialize};

/// Envelope description of the machine room.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Overall heat-transfer coefficient of the envelope (W/K).
    pub u_env: Conductance,
    /// Temperature of the surroundings (corridors, outdoors).
    pub t_ambient: Temperature,
    /// Constant auxiliary heat load inside the room (W).
    pub aux_load: Watts,
}

impl Envelope {
    /// Creates an envelope.
    ///
    /// # Panics
    ///
    /// Panics if `u_env` or `aux_load` is negative.
    pub fn new(u_env: Conductance, t_ambient: Temperature, aux_load: Watts) -> Self {
        assert!(
            u_env.as_watts_per_kelvin() >= 0.0,
            "envelope conductance must be non-negative"
        );
        assert!(
            aux_load.as_watts() >= 0.0,
            "auxiliary load must be non-negative"
        );
        Envelope {
            u_env,
            t_ambient,
            aux_load,
        }
    }

    /// An adiabatic room with no auxiliary load (useful in unit tests where
    /// the only heat source should be the servers).
    pub fn adiabatic() -> Self {
        Envelope::new(
            Conductance::ZERO,
            Temperature::from_celsius(25.0),
            Watts::ZERO,
        )
    }

    /// Net heat flowing *into* the room air at room temperature `t_room`
    /// (can be negative when the room is warmer than the surroundings).
    pub fn heat_gain(&self, t_room: Temperature) -> Watts {
        self.u_env * (self.t_ambient - t_room) + self.aux_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_decreases_as_room_warms() {
        let env = Envelope::new(
            Conductance::watts_per_kelvin(900.0),
            Temperature::from_celsius(30.0),
            Watts::new(2000.0),
        );
        let cold = env.heat_gain(Temperature::from_celsius(18.0));
        let warm = env.heat_gain(Temperature::from_celsius(24.0));
        assert!((cold.as_watts() - (900.0 * 12.0 + 2000.0)).abs() < 1e-9);
        assert!(warm < cold);
        // 1 K of room warming saves u_env watts of load.
        assert!((cold.as_watts() - warm.as_watts() - 900.0 * 6.0).abs() < 1e-9);
    }

    #[test]
    fn adiabatic_room_has_no_gain() {
        let env = Envelope::adiabatic();
        assert_eq!(env.heat_gain(Temperature::from_celsius(5.0)), Watts::ZERO);
    }

    #[test]
    fn gain_can_be_negative() {
        let env = Envelope::new(
            Conductance::watts_per_kelvin(100.0),
            Temperature::from_celsius(20.0),
            Watts::ZERO,
        );
        assert!(env.heat_gain(Temperature::from_celsius(25.0)).as_watts() < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_aux_load_panics() {
        Envelope::new(
            Conductance::ZERO,
            Temperature::from_celsius(20.0),
            Watts::new(-5.0),
        );
    }
}
