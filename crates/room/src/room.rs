//! The composed machine-room ODE system.

use crate::airflow::AirDistribution;
use crate::envelope::Envelope;
use crate::geometry::Rack;
use coolopt_cooling::{CracMode, CracUnit};
use coolopt_machine::{CpuTempSensor, PowerMeter, Server};
use coolopt_sim::ode::{Dynamics, Integrator, Rk4};
use coolopt_sim::{SimClock, SimScratch};
use coolopt_units::{FlowRate, HeatCapacity, Seconds, Temperature, Watts, C_AIR};
use std::cell::RefCell;
use std::fmt;

/// Error returned when assembling an inconsistent machine room.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidRoom {
    what: String,
}

impl InvalidRoom {
    pub(crate) fn new(what: String) -> Self {
        InvalidRoom { what }
    }
}

impl fmt::Display for InvalidRoom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine room: {}", self.what)
    }
}

impl std::error::Error for InvalidRoom {}

/// Room-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoomConfig {
    /// Lumped heat capacity of the room air (J/K).
    pub room_air_capacity: HeatCapacity,
    /// Envelope and auxiliary loads.
    pub envelope: Envelope,
    /// Integration step.
    pub dt: Seconds,
    /// Initial temperature of every thermal node.
    pub initial_temp: Temperature,
}

impl Default for RoomConfig {
    fn default() -> Self {
        RoomConfig {
            room_air_capacity: HeatCapacity::joules_per_kelvin(60_000.0),
            envelope: Envelope::new(
                coolopt_units::Conductance::watts_per_kelvin(120.0),
                Temperature::from_celsius(25.0),
                Watts::new(800.0),
            ),
            dt: Seconds::new(1.0),
            initial_temp: Temperature::from_celsius(24.0),
        }
    }
}

/// The simulated machine room: `n` servers, one CRAC, air paths, envelope.
///
/// The continuous state is
/// `[T_cpu_0, T_box_0, …, T_cpu_{n−1}, T_box_{n−1}, T_room, crac_integral]`;
/// [`MachineRoom::step`] advances it with RK4 and then lets the discrete
/// parts (boot timers, noise processes) catch up.
#[derive(Debug, Clone)]
pub struct MachineRoom {
    servers: Vec<Server>,
    crac: CracUnit,
    air: AirDistribution,
    rack: Rack,
    config: RoomConfig,
    t_room: Temperature,
    clock: SimClock,
    temp_sensors: Vec<CpuTempSensor>,
    power_meters: Vec<PowerMeter>,
    /// Persistent packed-state buffer for [`MachineRoom::step`].
    ode_state: Vec<f64>,
    /// Persistent integrator workspace for [`MachineRoom::step`].
    scratch: SimScratch,
    /// Air-path temporaries for [`Dynamics::derivatives`] (which only gets
    /// `&self`, hence the interior mutability). Never held across a call.
    air_buffers: RefCell<AirBuffers>,
}

/// Reused air-path temporaries: exhaust temperatures, per-server flows and
/// inlet temperatures.
#[derive(Debug, Clone, Default)]
struct AirBuffers {
    exhausts: Vec<Temperature>,
    flows: Vec<FlowRate>,
    inlets: Vec<Temperature>,
}

/// View of the instantaneous air-path temperatures.
#[derive(Debug, Clone, PartialEq)]
pub struct AirState {
    /// CRAC return-stream temperature.
    pub t_return: Temperature,
    /// CRAC supply temperature `T_ac`.
    pub t_supply: Temperature,
    /// Per-server inlet temperatures `T_in`.
    pub inlets: Vec<Temperature>,
}

impl MachineRoom {
    /// Assembles a machine room.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRoom`] if the component counts disagree or the
    /// servers collectively demand more supply air than the CRAC provides.
    pub fn new(
        servers: Vec<Server>,
        crac: CracUnit,
        air: AirDistribution,
        rack: Rack,
        config: RoomConfig,
        sensor_seed: u64,
    ) -> Result<Self, InvalidRoom> {
        let n = servers.len();
        if n == 0 {
            return Err(InvalidRoom {
                what: "a machine room needs at least one server".into(),
            });
        }
        if air.len() != n || rack.len() != n {
            return Err(InvalidRoom {
                what: format!(
                    "component mismatch: {n} servers, air distribution for {}, rack of {}",
                    air.len(),
                    rack.len()
                ),
            });
        }
        let max_flows: Vec<_> = servers.iter().map(|s| s.config().fan_flow).collect();
        let demand = air.supply_flow_demand(&max_flows);
        if demand.as_cubic_meters_per_second() > crac.config().flow.as_cubic_meters_per_second() {
            return Err(InvalidRoom {
                what: format!(
                    "servers demand {demand} of supply air but the CRAC provides {}",
                    crac.config().flow
                ),
            });
        }
        let t0 = config.initial_temp;
        let mut servers = servers;
        for s in &mut servers {
            s.sync_thermal_state(t0, t0);
        }
        let temp_sensors = (0..n)
            .map(|i| CpuTempSensor::with_default_noise(sensor_seed.wrapping_add(i as u64)))
            .collect();
        let power_meters = (0..n)
            .map(|i| PowerMeter::with_default_noise(sensor_seed.wrapping_add(1000 + i as u64)))
            .collect();
        Ok(MachineRoom {
            servers,
            crac,
            air,
            rack,
            config,
            t_room: t0,
            clock: SimClock::new(config.dt),
            temp_sensors,
            power_meters,
            ode_state: Vec::with_capacity(2 * n + Self::EXTRA_STATES),
            scratch: SimScratch::with_dim(2 * n + Self::EXTRA_STATES),
            air_buffers: RefCell::new(AirBuffers {
                exhausts: Vec::with_capacity(n),
                flows: Vec::with_capacity(n),
                inlets: Vec::with_capacity(n),
            }),
        })
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the room holds no servers (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Mutable access to one server.
    pub fn server_mut(&mut self, i: usize) -> &mut Server {
        &mut self.servers[i]
    }

    /// The cooling unit.
    pub fn crac(&self) -> &CracUnit {
        &self.crac
    }

    /// Mutable access to the cooling unit.
    pub fn crac_mut(&mut self) -> &mut CracUnit {
        &mut self.crac
    }

    /// The rack geometry.
    pub fn rack(&self) -> &Rack {
        &self.rack
    }

    /// The air-distribution description.
    pub fn air_distribution(&self) -> &AirDistribution {
        &self.air
    }

    /// The room configuration.
    pub fn config(&self) -> &RoomConfig {
        &self.config
    }

    /// Room-air temperature.
    pub fn room_temp(&self) -> Temperature {
        self.t_room
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    /// Commands the CRAC's return-air set point.
    pub fn set_set_point(&mut self, t_sp: Temperature) {
        self.crac.set_mode(CracMode::ReturnSetPoint(t_sp));
    }

    /// Powers every machine on instantly (skipping boot) with zero load.
    pub fn force_all_on(&mut self) {
        for s in &mut self.servers {
            s.force_on();
        }
    }

    /// Applies an ON-set: machines in `on` are forced on, all others off.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn apply_on_set(&mut self, on: &[usize]) {
        for s in &mut self.servers {
            s.power_off();
        }
        for &i in on {
            self.servers[i].force_on();
        }
    }

    /// Like [`MachineRoom::apply_on_set`], but *realistically*: newly
    /// started machines go through their boot transient (drawing idle power
    /// while serving nothing), machines already on stay on, and machines not
    /// in `on` shut down. Used by online controllers, where boot latency is
    /// part of the cost of a consolidation decision.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn command_on_set(&mut self, on: &[usize]) {
        for (i, s) in self.servers.iter_mut().enumerate() {
            if on.contains(&i) {
                s.power_on();
            } else {
                s.power_off();
            }
        }
    }

    /// Commands per-server load fractions.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`coolopt_machine::server::InvalidLoad`] if any
    /// fraction is outside `[0, 1]`.
    pub fn set_loads(&mut self, loads: &[f64]) -> Result<(), coolopt_machine::server::InvalidLoad> {
        assert_eq!(loads.len(), self.servers.len(), "load vector size mismatch");
        for (s, &l) in self.servers.iter_mut().zip(loads) {
            s.set_load(l)?;
        }
        Ok(())
    }

    /// Instantaneous air-path temperatures for the current state.
    pub fn air_state(&self) -> AirState {
        let exhausts: Vec<_> = self.servers.iter().map(|s| s.exhaust_temp()).collect();
        let flows: Vec<_> = self.servers.iter().map(|s| s.air_flow()).collect();
        let t_return =
            self.air
                .return_temp(&exhausts, &flows, self.t_room, self.crac.config().flow);
        let t_supply = self.crac.supply_temp(t_return, self.crac.integral());
        let inlets = self.air.inlet_temps(t_supply, &exhausts, self.t_room);
        AirState {
            t_return,
            t_supply,
            inlets,
        }
    }

    /// Total electrical power of the computing side (sum of server draws).
    pub fn computing_power(&self) -> Watts {
        self.servers.iter().map(|s| s.power_draw()).sum()
    }

    /// Electrical power of the cooling unit.
    pub fn cooling_power(&self) -> Watts {
        let t_return = self.current_return_temp();
        self.crac.electrical_power(t_return, self.crac.integral())
    }

    /// Return-stream temperature for the *current* state, computed through
    /// the reused air buffers (no allocation — this sits inside settle and
    /// recording loops).
    fn current_return_temp(&self) -> Temperature {
        let mut buffers = self.air_buffers.borrow_mut();
        let AirBuffers {
            exhausts, flows, ..
        } = &mut *buffers;
        exhausts.clear();
        flows.clear();
        for s in &self.servers {
            exhausts.push(s.exhaust_temp());
            flows.push(s.air_flow());
        }
        self.air
            .return_temp(exhausts, flows, self.t_room, self.crac.config().flow)
    }

    /// Total room power: computing + cooling, the paper's `P_total`.
    pub fn total_power(&self) -> Watts {
        self.computing_power() + self.cooling_power()
    }

    /// Reads server `i`'s CPU temperature through its (noisy, quantized)
    /// sensor.
    pub fn read_cpu_temp(&mut self, i: usize) -> Temperature {
        let t = self.servers[i].cpu_temp();
        self.temp_sensors[i].read(t)
    }

    /// Reads server `i`'s power draw through its (noisy, quantized) meter.
    pub fn read_power(&mut self, i: usize) -> Watts {
        let p = self.servers[i].power_draw();
        self.power_meters[i].read(p)
    }

    const EXTRA_STATES: usize = 2; // room air + CRAC integral

    fn dim_internal(&self) -> usize {
        2 * self.servers.len() + Self::EXTRA_STATES
    }

    fn pack_state_into(&self, x: &mut Vec<f64>) {
        x.clear();
        for s in &self.servers {
            x.push(s.cpu_temp().as_kelvin());
            x.push(s.exhaust_temp().as_kelvin());
        }
        x.push(self.t_room.as_kelvin());
        x.push(self.crac.integral());
    }

    fn unpack_state(&mut self, x: &[f64]) {
        for (i, s) in self.servers.iter_mut().enumerate() {
            s.sync_thermal_state(
                Temperature::from_kelvin(x[2 * i]),
                Temperature::from_kelvin(x[2 * i + 1]),
            );
        }
        self.t_room = Temperature::from_kelvin(x[x.len() - 2]);
        self.crac.sync_integral(x[x.len() - 1]);
    }

    /// Advances the simulation by one step `dt`.
    ///
    /// The hot path is allocation-free: the packed state and the integrator
    /// workspace live on the room and are taken out for the duration of the
    /// step (the integrator needs `&self` while the buffers are borrowed
    /// mutably).
    pub fn step(&mut self) {
        let mut state = std::mem::take(&mut self.ode_state);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.pack_state_into(&mut state);
        let t = self.clock.now();
        let dt = self.clock.dt();
        Rk4::new().step_with(&*self, t, dt, &mut state, &mut scratch);
        self.unpack_state(&state);
        for s in &mut self.servers {
            s.advance(dt.as_secs_f64());
        }
        self.clock.tick();
        self.ode_state = state;
        self.scratch = scratch;
    }

    /// Runs the simulation for (at least) `duration`.
    pub fn run_for(&mut self, duration: Seconds) {
        let n = self.clock.ticks_for(duration);
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until the total power and the hottest CPU temperature are both
    /// trend-steady (means of two consecutive 120-sample windows within
    /// `power_tol` watts and 0.2 K respectively — measurement noise is
    /// averaged out, only the settling trend matters), or until `max`
    /// simulated time has elapsed.
    ///
    /// Returns `true` if steady state was reached.
    pub fn settle(&mut self, max: Seconds, power_tol: f64) -> bool {
        use coolopt_sim::TrendDetector;
        let mut power = TrendDetector::new(120, power_tol);
        let mut temp = TrendDetector::new(120, 0.2);
        let n = self.clock.ticks_for(max);
        for _ in 0..n {
            self.step();
            power.observe(self.total_power().as_watts());
            let hottest = self
                .servers
                .iter()
                .map(|s| s.cpu_temp().as_kelvin())
                .fold(f64::NEG_INFINITY, f64::max);
            temp.observe(hottest);
            if power.is_steady() && temp.is_steady() {
                return true;
            }
        }
        false
    }
}

impl Dynamics for MachineRoom {
    fn dim(&self) -> usize {
        self.dim_internal()
    }

    fn derivatives(&self, _t: Seconds, x: &[f64], dx: &mut [f64]) {
        let n = self.servers.len();
        let t_room = Temperature::from_kelvin(x[2 * n]);
        let integral = x[2 * n + 1];

        // Borrow the reused air-path temporaries for the whole evaluation;
        // nothing below re-enters `derivatives`, so the RefCell never
        // double-borrows.
        let mut buffers = self.air_buffers.borrow_mut();
        let AirBuffers {
            exhausts,
            flows,
            inlets,
        } = &mut *buffers;
        exhausts.clear();
        flows.clear();
        for (i, s) in self.servers.iter().enumerate() {
            exhausts.push(Temperature::from_kelvin(x[2 * i + 1]));
            flows.push(s.air_flow());
        }

        let t_return = self
            .air
            .return_temp(exhausts, flows, t_room, self.crac.config().flow);
        let t_supply = self.crac.supply_temp(t_return, integral);
        self.air
            .inlet_temps_into(t_supply, exhausts, t_room, inlets);

        let mut spilled_heat = Watts::ZERO;
        for (i, server) in self.servers.iter().enumerate() {
            let t_cpu = Temperature::from_kelvin(x[2 * i]);
            let t_box = exhausts[i];
            let (d_cpu, d_box) = server.thermal_rates(inlets[i], t_cpu, t_box);
            dx[2 * i] = d_cpu.as_kelvin_per_second();
            dx[2 * i + 1] = d_box.as_kelvin_per_second();
            let spill_conductance = (flows[i] * (1.0 - self.air.capture_fraction(i))) * C_AIR;
            spilled_heat += spill_conductance * (t_box - t_room);
        }

        // Supply air not drawn by servers spills into the room.
        let excess_supply = FlowRate::cubic_meters_per_second(
            self.crac.config().flow.as_cubic_meters_per_second()
                - self
                    .air
                    .supply_flow_demand(flows)
                    .as_cubic_meters_per_second(),
        );
        let supply_spill = (excess_supply * C_AIR) * (t_supply - t_room);
        let envelope_gain = self.config.envelope.heat_gain(t_room);

        let room_heat = spilled_heat + supply_spill + envelope_gain;
        dx[2 * n] = (room_heat / self.config.room_air_capacity).as_kelvin_per_second();
        dx[2 * n + 1] = self.crac.integral_rate(t_return, integral);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn settles_and_regulates_return_at_set_point() {
        let mut room = presets::small_rack(4, 7);
        room.force_all_on();
        room.set_loads(&[0.5; 4]).unwrap();
        room.set_set_point(Temperature::from_celsius(17.0));
        let ok = room.settle(Seconds::new(4000.0), 5.0);
        assert!(ok, "room failed to settle");
        let air = room.air_state();
        assert!(
            (air.t_return.as_celsius() - 17.0).abs() < 0.3,
            "return at {}, wanted 17 °C",
            air.t_return
        );
        // Supply must sit below return by load/(f·c).
        assert!(air.t_supply < air.t_return);
    }

    #[test]
    fn energy_balances_at_steady_state() {
        // At steady state the coil must extract servers + envelope heat.
        let mut room = presets::small_rack(4, 3);
        room.force_all_on();
        room.set_loads(&[0.8; 4]).unwrap();
        room.set_set_point(Temperature::from_celsius(16.0));
        assert!(room.settle(Seconds::new(6000.0), 2.0));
        let air = room.air_state();
        let coil = room
            .crac()
            .cooling_load(air.t_return, room.crac().integral());
        let generated = room.computing_power() + room.config().envelope.heat_gain(room.room_temp());
        let rel = (coil.as_watts() - generated.as_watts()).abs() / generated.as_watts();
        assert!(
            rel < 0.05,
            "coil {coil} vs generated {generated} (rel err {rel})"
        );
    }

    #[test]
    fn higher_set_point_cuts_cooling_power() {
        let measure = |sp: f64| {
            let mut room = presets::small_rack(6, 11);
            room.force_all_on();
            room.set_loads(&[0.8; 6]).unwrap();
            room.set_set_point(Temperature::from_celsius(sp));
            assert!(room.settle(Seconds::new(6000.0), 2.0));
            room.total_power().as_watts()
        };
        let cold = measure(16.0);
        let warm = measure(22.0);
        assert!(
            warm < cold - 250.0,
            "raising the set point 6 K should save well over 0.25 kW (cold={cold}, warm={warm})"
        );
    }

    #[test]
    fn loaded_machines_run_hotter() {
        let mut room = presets::small_rack(4, 5);
        room.force_all_on();
        room.set_loads(&[0.0, 0.0, 1.0, 1.0]).unwrap();
        room.set_set_point(Temperature::from_celsius(24.0));
        assert!(room.settle(Seconds::new(5000.0), 5.0));
        let idle = room.servers()[0].cpu_temp();
        let busy = room.servers()[2].cpu_temp();
        assert!(
            (busy - idle).as_kelvin() > 10.0,
            "busy {} vs idle {}",
            busy,
            idle
        );
    }

    #[test]
    fn off_machines_do_not_heat() {
        let mut room = presets::small_rack(3, 5);
        room.apply_on_set(&[0]);
        room.set_loads(&[1.0, 0.0, 0.0]).unwrap();
        room.set_set_point(Temperature::from_celsius(24.0));
        assert!(room.settle(Seconds::new(5000.0), 5.0));
        let on = room.servers()[0].cpu_temp();
        let off = room.servers()[1].cpu_temp();
        assert!((on - off).as_kelvin() > 20.0);
        assert_eq!(room.servers()[1].power_draw(), Watts::ZERO);
    }

    #[test]
    fn observation_paths_work() {
        let mut room = presets::small_rack(2, 5);
        room.force_all_on();
        room.set_loads(&[0.5, 0.5]).unwrap();
        room.run_for(Seconds::new(100.0));
        let t = room.read_cpu_temp(0);
        let p = room.read_power(0);
        assert!(t.as_celsius() > 10.0 && t.as_celsius() < 90.0);
        assert!(p.as_watts() > 30.0 && p.as_watts() < 100.0);
        assert!(room.total_power() > room.computing_power());
    }

    #[test]
    fn cloned_rooms_evolve_bit_identically() {
        // Parallel sweeps run each scenario on a clone of the entry-state
        // room; that is only sound if a clone replays the exact trajectory,
        // including the persistent ODE/scratch/air buffers and noise state.
        let mut a = presets::small_rack(4, 13);
        a.force_all_on();
        a.set_loads(&[0.3, 0.9, 0.6, 0.0]).unwrap();
        a.set_set_point(Temperature::from_celsius(18.0));
        a.run_for(Seconds::new(50.0));
        let mut b = a.clone();
        for _ in 0..200 {
            a.step();
            b.step();
        }
        for (sa, sb) in a.servers().iter().zip(b.servers()) {
            assert_eq!(
                sa.cpu_temp().as_kelvin().to_bits(),
                sb.cpu_temp().as_kelvin().to_bits()
            );
            assert_eq!(sa.exhaust_temp(), sb.exhaust_temp());
        }
        assert_eq!(a.room_temp(), b.room_temp());
        assert_eq!(a.crac().integral().to_bits(), b.crac().integral().to_bits());
        assert_eq!(
            a.read_cpu_temp(2),
            b.read_cpu_temp(2),
            "sensor noise must clone"
        );
    }

    #[test]
    fn construction_rejects_mismatched_components() {
        let room = presets::small_rack(3, 5);
        let servers = room.servers().to_vec();
        let crac = room.crac().clone();
        let air = AirDistribution::uniform(2, 0.5, 0.8).unwrap();
        let rack = Rack::new_1u(3, 0.0);
        let result = MachineRoom::new(servers, crac, air, rack, *room.config(), 0);
        assert!(result.is_err());
    }
}
