//! Steady-state measurement bundles.
//!
//! The paper's evaluation reports steady-state power and temperature.
//! [`SteadyMeasurement::collect`] reproduces the measurement procedure: let
//! the room settle, then sample it through its (noisy) instruments for a
//! while and average.

use crate::room::MachineRoom;
use coolopt_units::{Seconds, Temperature, Watts};
use serde::{Deserialize, Serialize};

/// One instantaneous snapshot of the room through its instruments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoomObservation {
    /// Simulation time of the snapshot.
    pub time: Seconds,
    /// Per-server CPU temperature readings (sensor path).
    pub cpu_temps: Vec<Temperature>,
    /// Per-server power readings (meter path).
    pub server_powers: Vec<Watts>,
    /// Supply ("cool air") temperature `T_ac`.
    pub t_supply: Temperature,
    /// Return-stream temperature.
    pub t_return: Temperature,
    /// Room-air temperature.
    pub t_room: Temperature,
    /// Cooling-unit electrical power.
    pub cooling_power: Watts,
    /// Total power (computing + cooling).
    pub total_power: Watts,
}

impl RoomObservation {
    /// Snapshots the room through its instruments.
    pub fn capture(room: &mut MachineRoom) -> Self {
        let n = room.len();
        let cpu_temps = (0..n).map(|i| room.read_cpu_temp(i)).collect();
        let server_powers: Vec<Watts> = (0..n).map(|i| room.read_power(i)).collect();
        let air = room.air_state();
        let cooling_power = room.cooling_power();
        let computing: Watts = server_powers.iter().copied().sum();
        RoomObservation {
            time: room.now(),
            cpu_temps,
            server_powers,
            t_supply: air.t_supply,
            t_return: air.t_return,
            t_room: room.room_temp(),
            cooling_power,
            total_power: computing + cooling_power,
        }
    }
}

/// Averaged steady-state measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadyMeasurement {
    /// Whether the settle phase actually reached steady state.
    pub settled: bool,
    /// Mean per-server power readings (W).
    pub server_powers: Vec<Watts>,
    /// Mean per-server CPU temperature readings.
    pub cpu_temps: Vec<Temperature>,
    /// Hottest single CPU reading observed during the window.
    pub max_cpu_temp: Temperature,
    /// Hottest *true* CPU temperature during the window (bypassing the
    /// sensor's noise and quantization; available because the testbed is a
    /// simulator — the paper could only see sensor readings).
    pub max_cpu_temp_true: Temperature,
    /// Mean supply temperature `T_ac`.
    pub t_supply: Temperature,
    /// Mean return temperature.
    pub t_return: Temperature,
    /// Mean room-air temperature.
    pub t_room: Temperature,
    /// Mean cooling power (W).
    pub cooling_power: Watts,
    /// Mean computing power (W).
    pub computing_power: Watts,
    /// Mean total power (W) — the paper's `P_total`.
    pub total_power: Watts,
}

impl SteadyMeasurement {
    /// Settles the room (up to `max_settle`), then samples once per
    /// simulated second for `window` and averages.
    pub fn collect(room: &mut MachineRoom, max_settle: Seconds, window: Seconds) -> Self {
        let settled = room.settle(max_settle, 5.0);
        let n = room.len();
        let steps = room.config().dt;
        let samples = (window.as_secs_f64() / steps.as_secs_f64()).ceil().max(1.0) as usize;

        let mut server_powers = vec![0.0; n];
        let mut cpu_temps = vec![0.0; n];
        let mut max_cpu = f64::NEG_INFINITY;
        let mut max_cpu_true = f64::NEG_INFINITY;
        let mut t_supply = 0.0;
        let mut t_return = 0.0;
        let mut t_room = 0.0;
        let mut cooling = 0.0;
        let mut total = 0.0;

        for _ in 0..samples {
            room.step();
            let obs = RoomObservation::capture(room);
            for i in 0..n {
                server_powers[i] += obs.server_powers[i].as_watts();
                let c = obs.cpu_temps[i].as_celsius();
                cpu_temps[i] += c;
                max_cpu = max_cpu.max(c);
                max_cpu_true = max_cpu_true.max(room.servers()[i].cpu_temp().as_celsius());
            }
            t_supply += obs.t_supply.as_celsius();
            t_return += obs.t_return.as_celsius();
            t_room += obs.t_room.as_celsius();
            cooling += obs.cooling_power.as_watts();
            total += obs.total_power.as_watts();
        }

        let k = samples as f64;
        let computing = server_powers.iter().sum::<f64>() / k;
        SteadyMeasurement {
            settled,
            server_powers: server_powers.iter().map(|&p| Watts::new(p / k)).collect(),
            cpu_temps: cpu_temps
                .iter()
                .map(|&t| Temperature::from_celsius(t / k))
                .collect(),
            max_cpu_temp: Temperature::from_celsius(max_cpu),
            max_cpu_temp_true: Temperature::from_celsius(max_cpu_true),
            t_supply: Temperature::from_celsius(t_supply / k),
            t_return: Temperature::from_celsius(t_return / k),
            t_room: Temperature::from_celsius(t_room / k),
            cooling_power: Watts::new(cooling / k),
            computing_power: Watts::new(computing),
            total_power: Watts::new(total / k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn measurement_is_internally_consistent() {
        let mut room = presets::small_rack(3, 13);
        room.force_all_on();
        room.set_loads(&[0.5; 3]).unwrap();
        room.set_set_point(Temperature::from_celsius(25.0));
        let m = SteadyMeasurement::collect(&mut room, Seconds::new(5000.0), Seconds::new(60.0));
        assert!(m.settled);
        assert_eq!(m.server_powers.len(), 3);
        // total ≈ computing + cooling.
        let sum = m.computing_power + m.cooling_power;
        assert!((m.total_power.as_watts() - sum.as_watts()).abs() < 1.0);
        // Max CPU reading is at least the mean reading of every server.
        for t in &m.cpu_temps {
            assert!(m.max_cpu_temp.as_celsius() >= t.as_celsius() - 1e-9);
        }
        // Supply is the coldest air in the room at steady state.
        assert!(m.t_supply < m.t_return);
        assert!(m.t_supply < m.t_room);
    }

    #[test]
    fn busier_room_draws_more_computing_power() {
        let run = |load: f64| {
            let mut room = presets::small_rack(3, 13);
            room.force_all_on();
            room.set_loads(&[load; 3]).unwrap();
            room.set_set_point(Temperature::from_celsius(25.0));
            SteadyMeasurement::collect(&mut room, Seconds::new(5000.0), Seconds::new(60.0))
        };
        let idle = run(0.0);
        let busy = run(1.0);
        assert!(
            busy.computing_power.as_watts() > idle.computing_power.as_watts() + 100.0,
            "busy {} vs idle {}",
            busy.computing_power,
            idle.computing_power
        );
    }
}
