//! The evaluation scenarios of the paper's Fig. 4.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How load is spread over machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Total load divided equally — "the standard load balancing practice".
    Even,
    /// Cool job allocation (Bash & Forman): "filling machines up, coolest
    /// first"; on the paper's rack (and ours) the coolest spots are at the
    /// bottom, hence the name.
    BottomUp,
    /// The paper's closed-form optimal distribution.
    Optimal,
    /// Computing and cooling optimized *separately* — the anti-pattern the
    /// paper's introduction argues against: first minimize computing power
    /// alone (run the fewest machines, `⌈L⌉`, chosen thermally blind), then
    /// minimize cooling for whatever thermal mess that produced. Used by
    /// the ablation study; not one of Fig. 4's numbered methods.
    SeparateOpt,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Even => "Even",
            Strategy::BottomUp => "Bottom-up",
            Strategy::Optimal => "Optimal",
            Strategy::SeparateOpt => "Separate-opt",
        })
    }
}

/// One evaluation scenario: a strategy plus the two binary knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Method {
    /// Load-distribution strategy.
    pub strategy: Strategy,
    /// Whether the AC set point tracks the load (AC control).
    pub ac_control: bool,
    /// Whether unloaded machines are powered off.
    pub consolidation: bool,
}

impl Method {
    /// Creates an arbitrary scenario (Fig. 8 uses Even + consolidation,
    /// which Fig. 4 does not number).
    pub fn new(strategy: Strategy, ac_control: bool, consolidation: bool) -> Self {
        Method {
            strategy,
            ac_control,
            consolidation,
        }
    }

    /// The paper's numbered method `1..=8` (Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics for numbers outside `1..=8`.
    pub fn numbered(n: u8) -> Method {
        match n {
            1 => Method::new(Strategy::Even, false, false),
            2 => Method::new(Strategy::BottomUp, false, false),
            3 => Method::new(Strategy::BottomUp, false, true),
            4 => Method::new(Strategy::Even, true, false),
            5 => Method::new(Strategy::BottomUp, true, false),
            6 => Method::new(Strategy::Optimal, true, false),
            7 => Method::new(Strategy::BottomUp, true, true),
            8 => Method::new(Strategy::Optimal, true, true),
            other => panic!("the paper defines methods 1..=8, got {other}"),
        }
    }

    /// The number Fig. 4 gives this scenario, if any.
    pub fn number(&self) -> Option<u8> {
        (1..=8).find(|&n| Method::numbered(n) == *self)
    }

    /// All eight numbered methods, in order.
    pub fn all() -> Vec<Method> {
        (1..=8).map(Method::numbered).collect()
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = self.number() {
            write!(f, "#{n} ")?;
        }
        write!(
            f,
            "{} [{}, {}]",
            self.strategy,
            if self.ac_control {
                "AC control"
            } else {
                "no AC control"
            },
            if self.consolidation {
                "consolidation"
            } else {
                "no consolidation"
            }
        )
    }
}

/// Renders the Fig. 4 scenario matrix as ASCII.
pub fn fig4_matrix() -> String {
    let mut out = String::from(
        "Figure 4: evaluation scenarios\n\
         AC control | Consolidation | Strategy   | #\n",
    );
    out.push_str(&"-".repeat(48));
    out.push('\n');
    for m in Method::all() {
        out.push_str(&format!(
            "{:<10} | {:<13} | {:<10} | {}\n",
            if m.ac_control { "yes" } else { "no" },
            if m.consolidation { "yes" } else { "no" },
            m.strategy.to_string(),
            m.number().expect("all() yields numbered methods"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_eight_methods_match_fig4() {
        let all = Method::all();
        assert_eq!(all.len(), 8);
        // Spot checks straight from the figure.
        assert_eq!(all[0], Method::new(Strategy::Even, false, false));
        assert_eq!(all[6], Method::new(Strategy::BottomUp, true, true));
        assert_eq!(all[7], Method::new(Strategy::Optimal, true, true));
        // No optimal strategy without AC control (the optimum chooses T_ac).
        assert!(!all
            .iter()
            .any(|m| m.strategy == Strategy::Optimal && !m.ac_control));
    }

    #[test]
    fn numbering_round_trips() {
        for n in 1..=8 {
            assert_eq!(Method::numbered(n).number(), Some(n));
        }
        // The unnumbered Even+consolidation scenario of Fig. 8.
        assert_eq!(Method::new(Strategy::Even, true, true).number(), None);
        // The separate-optimization ablation scenario is unnumbered too.
        let sep = Method::new(Strategy::SeparateOpt, true, true);
        assert_eq!(sep.number(), None);
        assert!(sep.to_string().contains("Separate-opt"));
    }

    #[test]
    #[should_panic(expected = "methods 1..=8")]
    fn out_of_range_number_panics() {
        Method::numbered(9);
    }

    #[test]
    fn matrix_mentions_every_method() {
        let s = fig4_matrix();
        for n in 1..=8 {
            assert!(s.contains(&format!(" {n}\n")), "missing method {n}:\n{s}");
        }
    }

    #[test]
    fn display_is_informative() {
        let s = Method::numbered(7).to_string();
        assert!(s.contains("#7") && s.contains("Bottom-up") && s.contains("consolidation"));
    }
}
