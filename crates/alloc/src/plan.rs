//! Turning a method + load into an executable allocation plan.

use crate::methods::{Method, Strategy};
use crate::strategies::{bottom_up_loads, coolness_order, even_loads};
use coolopt_cooling::SetPointTable;
use coolopt_core::{
    loads_for_t_ac, optimal_allocation_clamped, IndexSnapshot, ModelFingerprint, SnapshotCell,
    SolveError,
};
use coolopt_model::RoomModel;
use coolopt_telemetry as telemetry;
use coolopt_units::{TempDelta, Temperature};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Error from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// The requested load is outside `[0, n]`.
    LoadOutOfRange {
        /// Requested load.
        load: f64,
        /// Machines available.
        machines: usize,
    },
    /// The optimizer could not find a feasible operating point.
    Solve(SolveError),
    /// The plan needs air colder than the unit can supply.
    TooColdRequired {
        /// The supply temperature the constraints demand.
        required: Temperature,
        /// The coldest the unit delivers.
        floor: Temperature,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::LoadOutOfRange { load, machines } => {
                write!(f, "load {load} outside [0, {machines}]")
            }
            PolicyError::Solve(e) => write!(f, "optimizer failed: {e}"),
            PolicyError::TooColdRequired { required, floor } => write!(
                f,
                "constraints demand supply at {required} but the unit bottoms out at {floor}"
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<SolveError> for PolicyError {
    fn from(e: SolveError) -> Self {
        PolicyError::Solve(e)
    }
}

/// An executable operating decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationPlan {
    /// The scenario this plan realizes.
    pub method: Method,
    /// Machines to power on.
    pub on: Vec<usize>,
    /// Load fraction per machine (full room length; zero for OFF machines).
    pub loads: Vec<f64>,
    /// The supply temperature the plan aims for.
    pub t_ac_target: Temperature,
    /// The set point to command so the supply lands on target.
    pub set_point: Temperature,
}

impl AllocationPlan {
    /// Total planned load.
    pub fn total_load(&self) -> f64 {
        self.loads.iter().sum()
    }
}

/// Plans allocations for one profiled room.
///
/// Planning happens against a *guarded* copy of the model whose `T_max` sits
/// a guard band below the true limit: the fitted model carries a few kelvin
/// of error (the paper: "a few percent error"), and a deployment that plans
/// exactly to the limit would breach it whenever the model errs warm. The
/// guard applies to every method equally, so comparisons stay fair.
///
/// # Engine reuse and publication
///
/// The first consolidating `Optimal` plan builds the `O(n² log n)`
/// consolidation index and publishes it as an immutable, `Arc`-shared
/// [`IndexSnapshot`] in a [`SnapshotCell`] keyed by the guarded model's
/// [`ModelFingerprint`], so every later [`Planner::plan`] against the same
/// model is a pure index query with no rebuild. Swapping the model with
/// [`Planner::set_model`] only updates the cached fingerprint: the next
/// plan builds the replacement *outside* the cell's lock and swaps it in
/// atomically, so concurrent readers keep querying the old snapshot and
/// never block on a rebuild.
#[derive(Debug, Clone)]
pub struct Planner {
    model: RoomModel,
    set_points: SetPointTable,
    t_ac_floor: Temperature,
    guard: TempDelta,
    fingerprint: ModelFingerprint,
    engine: SnapshotCell,
}

/// Default guard band between the true `T_max` and the planning target.
pub const DEFAULT_GUARD: TempDelta = TempDelta::from_kelvin(2.0);

impl Planner {
    /// Creates a planner with an 8 °C supply floor (typical coil limit) and
    /// the default 2 K guard band.
    pub fn new(model: &RoomModel, set_points: &SetPointTable) -> Self {
        Self::with_guard(model, set_points, DEFAULT_GUARD)
    }

    /// Creates a planner with an explicit guard band.
    pub fn with_guard(model: &RoomModel, set_points: &SetPointTable, guard: TempDelta) -> Self {
        let guarded = model.with_t_max(model.t_max() - guard);
        Planner {
            fingerprint: ModelFingerprint::of_model(&guarded),
            model: guarded,
            set_points: set_points.clone(),
            t_ac_floor: Temperature::from_celsius(8.0),
            guard,
            engine: SnapshotCell::new(),
        }
    }

    /// Overrides the supply floor.
    pub fn with_floor(mut self, floor: Temperature) -> Self {
        self.t_ac_floor = floor;
        self
    }

    /// The (guarded) model this planner works from.
    pub fn model(&self) -> &RoomModel {
        &self.model
    }

    /// Fingerprint of the guarded model the published engine is keyed by.
    pub fn fingerprint(&self) -> ModelFingerprint {
        self.fingerprint
    }

    /// Replaces the planner's model (re-applying the guard band). The
    /// published solver snapshot is swapped out lazily, and only if the new
    /// model actually fingerprints differently — re-setting an identical
    /// model keeps the index.
    pub fn set_model(&mut self, model: &RoomModel) {
        let guarded = model.with_t_max(model.t_max() - self.guard);
        self.fingerprint = ModelFingerprint::of_model(&guarded);
        self.model = guarded;
    }

    /// The published engine snapshot, built (outside the publication lock)
    /// on first use or after a model swap. Readers holding the previous
    /// `Arc` keep querying it while the replacement builds.
    fn engine(&self) -> Result<Arc<IndexSnapshot>, SolveError> {
        self.engine
            .ensure(self.fingerprint, || IndexSnapshot::for_model(&self.model))
    }

    /// Builds and publishes the solver engine now (instead of lazily on the
    /// first consolidating `Optimal` plan), returning the snapshot. Useful
    /// to pay the offline phase at a chosen time — e.g. before handing
    /// clones of this planner to worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DegenerateModel`] for a degenerate model.
    pub fn warm_engine(&self) -> Result<Arc<IndexSnapshot>, SolveError> {
        self.engine()
    }

    /// Plans `method` for `total_load`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] for unservable loads or infeasible
    /// temperature constraints.
    pub fn plan(&self, method: Method, total_load: f64) -> Result<AllocationPlan, PolicyError> {
        let mut span = telemetry::span("plan").attr("load", total_load);
        let result = self.plan_impl(method, total_load);
        telemetry::counter("coolopt_plans_total").inc();
        span.set_attr("ok", result.is_ok());
        if result.is_err() {
            telemetry::counter("coolopt_plan_failures_total").inc();
        }
        result
    }

    fn plan_impl(&self, method: Method, total_load: f64) -> Result<AllocationPlan, PolicyError> {
        let n = self.model.len();
        if !total_load.is_finite() || total_load < 0.0 || total_load > n as f64 + 1e-9 {
            return Err(PolicyError::LoadOutOfRange {
                load: total_load,
                machines: n,
            });
        }

        let (on, loads) = self.distribute(method, total_load)?;
        let (t_ac_target, set_point) = self.choose_cooling(method, &on, &loads, total_load)?;
        Ok(AllocationPlan {
            method,
            on,
            loads,
            t_ac_target,
            set_point,
        })
    }

    /// Chooses the ON-set and the per-machine loads.
    fn distribute(
        &self,
        method: Method,
        total_load: f64,
    ) -> Result<(Vec<usize>, Vec<f64>), PolicyError> {
        let n = self.model.len();
        // Only the non-consolidating branches turn every machine on; built
        // lazily so the hot consolidating path does not allocate it.
        let all = || (0..n).collect::<Vec<usize>>();
        match (method.strategy, method.consolidation) {
            (Strategy::Even, false) => Ok((all(), even_loads(n, total_load))),
            (Strategy::Even, true) => {
                // Minimum machine count, coolest spots first, even within.
                let k = (total_load.ceil() as usize).clamp(usize::from(total_load > 0.0), n);
                let on: Vec<usize> = coolness_order(&self.model).into_iter().take(k).collect();
                let mut loads = vec![0.0; n];
                for &i in &on {
                    loads[i] = total_load / k.max(1) as f64;
                }
                Ok((on, loads))
            }
            (Strategy::SeparateOpt, _) => {
                // Computing-only optimum: fewest machines, picked by slot
                // index (thermally blind), loaded evenly. The strategy
                // implies consolidation — that *is* the computing optimum;
                // cooling is then minimized separately for whatever thermal
                // situation results.
                let k = (total_load.ceil() as usize).clamp(usize::from(total_load > 0.0), n);
                let on: Vec<usize> = (0..k).collect();
                let mut loads = vec![0.0; n];
                for &i in &on {
                    loads[i] = total_load / k.max(1) as f64;
                }
                Ok((on, loads))
            }
            (Strategy::BottomUp, cons) => {
                let loads = bottom_up_loads(&self.model, total_load);
                let on = if cons {
                    loads
                        .iter()
                        .enumerate()
                        .filter(|(_, &l)| l > 0.0)
                        .map(|(i, _)| i)
                        .collect()
                } else {
                    all()
                };
                Ok((on, loads))
            }
            (Strategy::Optimal, cons) => {
                let on = if cons {
                    if total_load <= 0.0 {
                        Vec::new()
                    } else {
                        self.engine()?
                            .query_min_power(total_load, Some(&self.model))?
                            .ok_or(SolveError::Infeasible {
                                reason: "no subset can carry this load within capacity".to_string(),
                            })?
                            .on
                    }
                } else {
                    all()
                };
                let loads = self.optimal_loads(&on, total_load)?;
                Ok((on, loads))
            }
        }
    }

    /// The closed-form optimal per-machine loads for a fixed ON-set,
    /// falling back to the capped-temperature redistribution when the
    /// actuator cannot reach the model-optimal supply. Shared by
    /// [`Planner::plan`] and [`Planner::plan_batch`], so the two produce
    /// identical plans.
    fn optimal_loads(&self, on: &[usize], total_load: f64) -> Result<Vec<f64>, PolicyError> {
        let n = self.model.len();
        if on.is_empty() {
            return Ok(vec![0.0; n]);
        }
        let solution = optimal_allocation_clamped(&self.model, on, total_load)?;
        let mut full = solution.full_loads(n);
        // If the actuator cannot reach the model-optimal supply
        // temperature, redistribute for the capped temperature
        // (power-equivalent; keeps headroom balanced).
        if let Some(cap) = self.model.t_ac_max() {
            if solution.t_ac > cap {
                let capped = loads_for_t_ac(&self.model, on, total_load, cap)?;
                for (&i, &l) in on.iter().zip(&capped) {
                    full[i] = l;
                }
            }
        }
        Ok(full)
    }

    /// Finishes a consolidating `Optimal` plan from its chosen ON-set.
    fn finish_optimal_cons(
        &self,
        method: Method,
        on: Vec<usize>,
        total_load: f64,
    ) -> Result<AllocationPlan, PolicyError> {
        let loads = self.optimal_loads(&on, total_load)?;
        let (t_ac_target, set_point) = self.choose_cooling(method, &on, &loads, total_load)?;
        Ok(AllocationPlan {
            method,
            on,
            loads,
            t_ac_target,
            set_point,
        })
    }

    /// Plans `method` for every load of `loads` (one result per input, in
    /// input order), producing exactly the plans [`Planner::plan`] would.
    ///
    /// For the consolidating `Optimal` method the consolidation queries are
    /// answered by [`IndexSnapshot::query_batch`] — sorted once, one walk
    /// over the index's per-`k` envelopes for the whole batch — instead of
    /// a binary-search scan per load, which is markedly cheaper for e.g. a
    /// replay over a load trace. Other methods delegate to
    /// [`Planner::plan`] per load (they have no batchable offline work).
    pub fn plan_batch(
        &self,
        method: Method,
        loads: &[f64],
    ) -> Vec<Result<AllocationPlan, PolicyError>> {
        if !(method.strategy == Strategy::Optimal && method.consolidation) {
            return loads.iter().map(|&l| self.plan(method, l)).collect();
        }
        let _span = telemetry::span("plan_batch")
            .attr("loads", loads.len())
            .record_into("coolopt_plan_batch_seconds");
        let n = self.model.len();
        // Validate exactly as plan() does, batching only the valid,
        // positive loads.
        let mut results: Vec<Option<Result<AllocationPlan, PolicyError>>> =
            loads.iter().map(|_| None).collect();
        let mut queried: Vec<(usize, f64)> = Vec::with_capacity(loads.len());
        for (slot, &load) in loads.iter().enumerate() {
            if !load.is_finite() || load < 0.0 || load > n as f64 + 1e-9 {
                results[slot] = Some(Err(PolicyError::LoadOutOfRange { load, machines: n }));
            } else if load <= 0.0 {
                results[slot] = Some(self.finish_optimal_cons(method, Vec::new(), load));
            } else {
                queried.push((slot, load));
            }
        }
        if !queried.is_empty() {
            let batch_loads: Vec<f64> = queried.iter().map(|&(_, l)| l).collect();
            let answers = self
                .engine()
                .and_then(|engine| engine.query_batch(&batch_loads, Some(&self.model)));
            match answers {
                Err(e) => {
                    for &(slot, _) in &queried {
                        results[slot] = Some(Err(e.clone().into()));
                    }
                }
                Ok(answers) => {
                    for (&(slot, load), answer) in queried.iter().zip(answers) {
                        results[slot] = Some(match answer {
                            None => Err(SolveError::Infeasible {
                                reason: "no subset can carry this load within capacity".to_string(),
                            }
                            .into()),
                            Some(c) => self.finish_optimal_cons(method, c.on, load),
                        });
                    }
                }
            }
        }
        let results: Vec<Result<AllocationPlan, PolicyError>> = results
            .into_iter()
            .map(|r| r.expect("every slot is answered"))
            .collect();
        telemetry::counter("coolopt_plans_total").add(results.len() as u64);
        let failures = results.iter().filter(|r| r.is_err()).count();
        telemetry::counter("coolopt_plan_failures_total").add(failures as u64);
        results
    }

    /// Highest supply temperature keeping every ON machine at or below
    /// `T_max` for the given loads (Eq. 8 solved for `T_ac`).
    fn safe_t_ac(&self, on: &[usize], loads: &[f64]) -> Temperature {
        let mut t = f64::INFINITY;
        for &i in on {
            let th = self.model.thermal(i);
            let p = self.model.power().predict(loads[i]);
            let cap = (self.model.t_max().as_kelvin() - th.beta() * p.as_watts() - th.gamma())
                / th.alpha();
            t = t.min(cap);
        }
        Temperature::from_kelvin(t)
    }

    /// Picks the target supply temperature and the set point realizing it.
    fn choose_cooling(
        &self,
        method: Method,
        on: &[usize],
        loads: &[f64],
        total_load: f64,
    ) -> Result<(Temperature, Temperature), PolicyError> {
        let n = self.model.len();
        let (t_ac, table_load) = if method.ac_control {
            // As warm as the *current* loads allow.
            let safe = if on.is_empty() {
                Temperature::from_kelvin(f64::INFINITY)
            } else {
                self.safe_t_ac(on, loads)
            };
            (self.model.clamp_t_ac(safe), total_load)
        } else {
            // Static setting: safe even when all machines run flat out; the
            // set point is then left alone for every load.
            let all: Vec<usize> = (0..n).collect();
            let safe = self.safe_t_ac(&all, &vec![1.0; n]);
            (self.model.clamp_t_ac(safe), n as f64)
        };

        if !t_ac.as_kelvin().is_finite() {
            // No constraint at all (empty ON-set): aim at the ceiling.
            let ceiling = self
                .model
                .t_ac_max()
                .unwrap_or(Temperature::from_celsius(20.0));
            return Ok((ceiling, self.set_points.set_point_for(ceiling, table_load)));
        }
        if t_ac < self.t_ac_floor {
            return Err(PolicyError::TooColdRequired {
                required: t_ac,
                floor: self.t_ac_floor,
            });
        }
        Ok((t_ac, self.set_points.set_point_for(t_ac, table_load)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_model::{CoolingModel, PowerModel, ThermalModel};
    use coolopt_units::Watts;

    fn model(n: usize) -> RoomModel {
        let power = PowerModel::new(Watts::new(45.0), Watts::new(40.0)).unwrap();
        let thermal = (0..n)
            .map(|i| {
                let h = i as f64 / n.max(2) as f64;
                let alpha = 0.95 - 0.2 * h;
                let gamma = (290.0 + 4.0 * h) - alpha * 290.0;
                ThermalModel::new(alpha, 0.5 + 0.04 * h, gamma).unwrap()
            })
            .collect();
        let cooling = CoolingModel::new(400.0, Temperature::from_celsius(40.0)).unwrap();
        RoomModel::new(power, thermal, cooling, Temperature::from_celsius(63.0))
            .unwrap()
            .with_t_ac_max(Temperature::from_celsius(20.0))
    }

    fn table() -> SetPointTable {
        SetPointTable::from_measurements(&[
            (
                1.0,
                Temperature::from_celsius(20.0),
                Temperature::from_celsius(18.5),
            ),
            (
                4.0,
                Temperature::from_celsius(20.0),
                Temperature::from_celsius(17.5),
            ),
            (
                8.0,
                Temperature::from_celsius(20.0),
                Temperature::from_celsius(16.0),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn all_methods_plan_and_conserve_load() {
        let m = model(8);
        let t = table();
        let planner = Planner::new(&m, &t);
        for method in Method::all() {
            for load in [0.5, 2.0, 5.0, 7.5] {
                let plan = planner
                    .plan(method, load)
                    .unwrap_or_else(|e| panic!("{method} failed at load {load}: {e}"));
                assert!(
                    (plan.total_load() - load).abs() < 1e-6,
                    "{method} lost load: {} vs {load}",
                    plan.total_load()
                );
                for &l in &plan.loads {
                    assert!((0.0..=1.0 + 1e-9).contains(&l));
                }
                // OFF machines carry nothing.
                for (i, &l) in plan.loads.iter().enumerate() {
                    if l > 0.0 {
                        assert!(plan.on.contains(&i), "{method}: load on OFF machine {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn consolidation_turns_machines_off_at_low_load() {
        let m = model(8);
        let t = table();
        let planner = Planner::new(&m, &t);
        for method in [
            Method::numbered(3),
            Method::numbered(7),
            Method::numbered(8),
        ] {
            let plan = planner.plan(method, 1.5).unwrap();
            assert!(plan.on.len() < 8, "{method} kept everything on at low load");
        }
        for method in [
            Method::numbered(1),
            Method::numbered(4),
            Method::numbered(6),
        ] {
            let plan = planner.plan(method, 1.5).unwrap();
            assert_eq!(plan.on.len(), 8, "{method} must keep all machines on");
        }
    }

    #[test]
    fn ac_control_runs_warmer_at_low_load() {
        let m = model(8);
        let t = table();
        let planner = Planner::new(&m, &t);
        // Static method: same set point at every load.
        let s1 = planner.plan(Method::numbered(2), 1.0).unwrap();
        let s2 = planner.plan(Method::numbered(2), 7.0).unwrap();
        assert_eq!(s1.set_point, s2.set_point);
        // Controlled method: warmer target at lower load (or both capped).
        let c1 = planner.plan(Method::numbered(6), 1.0).unwrap();
        let c2 = planner.plan(Method::numbered(6), 7.5).unwrap();
        assert!(c1.t_ac_target >= c2.t_ac_target);
        // And never above the actuator ceiling.
        assert!(c1.t_ac_target <= Temperature::from_celsius(20.0));
        // The static choice is never warmer than the controlled one.
        assert!(s1.t_ac_target <= c1.t_ac_target);
    }

    #[test]
    fn optimal_beats_baselines_in_predicted_power() {
        let m = model(8);
        let t = table();
        let planner = Planner::new(&m, &t);
        let predicted = |plan: &AllocationPlan| {
            let computing: f64 = plan
                .on
                .iter()
                .map(|&i| m.power().predict(plan.loads[i]).as_watts())
                .sum();
            computing + m.cooling().predict(plan.t_ac_target).as_watts()
        };
        for load in [2.0, 4.0, 6.0] {
            let p6 = predicted(&planner.plan(Method::numbered(6), load).unwrap());
            let p4 = predicted(&planner.plan(Method::numbered(4), load).unwrap());
            let p5 = predicted(&planner.plan(Method::numbered(5), load).unwrap());
            assert!(
                p6 <= p4 + 1e-6 && p6 <= p5 + 1e-6,
                "load {load}: optimal {p6} vs even {p4} vs bottom-up {p5}"
            );
            let p8 = predicted(&planner.plan(Method::numbered(8), load).unwrap());
            let p7 = predicted(&planner.plan(Method::numbered(7), load).unwrap());
            assert!(p8 <= p7 + 1e-6, "load {load}: #8 {p8} vs #7 {p7}");
        }
    }

    #[test]
    fn zero_load_is_planned_gracefully() {
        let m = model(4);
        let t = table();
        let planner = Planner::new(&m, &t);
        let cons = planner.plan(Method::numbered(8), 0.0).unwrap();
        assert!(cons.on.is_empty());
        assert_eq!(cons.total_load(), 0.0);
        let no_cons = planner.plan(Method::numbered(4), 0.0).unwrap();
        assert_eq!(no_cons.on.len(), 4);
    }

    #[test]
    fn batched_plans_equal_sequential_plans() {
        let m = model(8);
        let t = table();
        let planner = Planner::new(&m, &t);
        // Unsorted, with duplicates, a zero, an out-of-range and an
        // unservable-by-capacity load.
        let loads = [2.0, 0.5, 7.5, 2.0, 0.0, 9.5, 5.25];
        for method in Method::all() {
            let batch = planner.plan_batch(method, &loads);
            assert_eq!(batch.len(), loads.len());
            for (&load, got) in loads.iter().zip(&batch) {
                let want = planner.plan(method, load);
                assert_eq!(got, &want, "{method} at load {load} diverged from plan()");
            }
        }
    }

    #[test]
    fn warm_engine_prebuilds_and_is_reused() {
        let m = model(6);
        let t = table();
        let planner = Planner::new(&m, &t);
        let snap = planner.warm_engine().unwrap();
        let again = planner.warm_engine().unwrap();
        assert!(std::sync::Arc::ptr_eq(&snap, &again));
        // Clones share the published snapshot (no rebuild).
        let clone = planner.clone();
        assert!(std::sync::Arc::ptr_eq(&snap, &clone.warm_engine().unwrap()));
    }

    #[test]
    fn set_model_swaps_the_engine_only_on_real_change() {
        let m = model(6);
        let t = table();
        let mut planner = Planner::new(&m, &t);
        let snap = planner.warm_engine().unwrap();
        planner.set_model(&m); // identical model → same fingerprint
        assert!(std::sync::Arc::ptr_eq(
            &snap,
            &planner.warm_engine().unwrap()
        ));
        planner.set_model(&model(7));
        let swapped = planner.warm_engine().unwrap();
        assert!(!std::sync::Arc::ptr_eq(&snap, &swapped));
        // The old snapshot still serves readers that hold it.
        assert!(snap.query_min_power(1.0, None).unwrap().is_some());
    }

    #[test]
    fn invalid_loads_are_rejected() {
        let m = model(4);
        let t = table();
        let planner = Planner::new(&m, &t);
        assert!(matches!(
            planner.plan(Method::numbered(1), 4.5),
            Err(PolicyError::LoadOutOfRange { .. })
        ));
        assert!(planner.plan(Method::numbered(1), f64::NAN).is_err());
    }
}
