//! Allocation policies: the paper's baselines, its optimal policy, and the
//! eight evaluation methods of its Fig. 4.
//!
//! An energy control policy decides three things (paper §IV-B):
//!
//! * **load distribution** — *Even* (standard load balancing), *Bottom-up*
//!   (Bash & Forman's cool job allocation: fill the machines in the coolest
//!   spots first), or *Optimal* (the closed form of `coolopt-core`);
//! * **AC temperature** — either a static set point chosen so full load is
//!   safe (*no AC control*), or per-load set-point selection through the
//!   calibrated `T_SP ↔ T_ac` mapping (*AC control*);
//! * **consolidation** — whether unloaded machines are powered off.
//!
//! [`Planner`] turns a [`Method`] and a total load into an
//! [`AllocationPlan`] that an experiment harness (or a real deployment) can
//! apply to the room.

#![warn(missing_docs)]

pub mod methods;
pub mod plan;
pub mod strategies;

pub use methods::{fig4_matrix, Method, Strategy};
pub use plan::{AllocationPlan, Planner, PolicyError};
pub use strategies::{bottom_up_loads, coolness_order, even_loads};
