//! The baseline load-distribution strategies.

use coolopt_model::RoomModel;
use coolopt_units::Temperature;

/// Reference supply temperature used when ranking spots by coolness.
const COOLNESS_REFERENCE: Temperature = Temperature::from_kelvin(290.0);

/// Even split: every machine gets `total_load / n`.
///
/// # Panics
///
/// Panics if `n == 0` or the load is outside `[0, n]` (callers validate).
pub fn even_loads(n: usize, total_load: f64) -> Vec<f64> {
    assert!(n > 0, "no machines to load");
    assert!(
        (0.0..=n as f64 + 1e-9).contains(&total_load),
        "total load {total_load} unservable by {n} machines"
    );
    vec![(total_load / n as f64).min(1.0); n]
}

/// Machines ordered coolest spot first.
///
/// Coolness is judged by the fitted inlet model (Eq. 7) at a reference
/// supply temperature: `T_in = α·T_ref + γ`. On the paper's rack (and on the
/// simulated testbed) this order runs bottom-up.
pub fn coolness_order(model: &RoomModel) -> Vec<usize> {
    let mut order: Vec<usize> = (0..model.len()).collect();
    let inlet = |i: usize| {
        let th = model.thermal(i);
        th.alpha() * COOLNESS_REFERENCE.as_kelvin() + th.gamma()
    };
    order.sort_by(|&i, &j| {
        inlet(i)
            .partial_cmp(&inlet(j))
            .expect("fitted coefficients are finite")
            .then(i.cmp(&j))
    });
    order
}

/// Cool job allocation: fill the coolest machines to 100 % first, then the
/// fractional remainder on the next coolest; the rest get nothing.
///
/// # Panics
///
/// Panics if the load is outside `[0, n]`.
pub fn bottom_up_loads(model: &RoomModel, total_load: f64) -> Vec<f64> {
    let n = model.len();
    assert!(
        (0.0..=n as f64 + 1e-9).contains(&total_load),
        "total load {total_load} unservable by {n} machines"
    );
    let mut loads = vec![0.0; n];
    let mut remaining = total_load;
    for &i in &coolness_order(model) {
        if remaining <= 0.0 {
            break;
        }
        let take = remaining.min(1.0);
        loads[i] = take;
        remaining -= take;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_model::{CoolingModel, PowerModel, ThermalModel};
    use coolopt_units::Watts;

    /// Machine `i` sits in a spot `2·i` kelvin warmer than machine 0.
    fn model(n: usize) -> RoomModel {
        let power = PowerModel::new(Watts::new(45.0), Watts::new(40.0)).unwrap();
        let thermal = (0..n)
            .map(|i| {
                let alpha = 0.9;
                let gamma = (290.0 + 2.0 * i as f64) - alpha * 290.0;
                ThermalModel::new(alpha, 0.5, gamma).unwrap()
            })
            .collect();
        let cooling = CoolingModel::new(400.0, Temperature::from_celsius(40.0)).unwrap();
        RoomModel::new(power, thermal, cooling, Temperature::from_celsius(60.0)).unwrap()
    }

    #[test]
    fn even_splits_exactly() {
        let v = even_loads(5, 2.0);
        assert!(v.iter().all(|&l| (l - 0.4).abs() < 1e-12));
        assert!((v.iter().sum::<f64>() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coolness_order_is_bottom_up_on_a_stratified_rack() {
        let m = model(5);
        assert_eq!(coolness_order(&m), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bottom_up_fills_coolest_first_with_fractional_tail() {
        let m = model(5);
        let v = bottom_up_loads(&m, 2.3);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 1.0);
        assert!((v[2] - 0.3).abs() < 1e-9);
        assert_eq!(&v[3..], &[0.0, 0.0]);
        assert!((v.iter().sum::<f64>() - 2.3).abs() < 1e-9);
    }

    #[test]
    fn bottom_up_handles_extremes() {
        let m = model(3);
        assert_eq!(bottom_up_loads(&m, 0.0), vec![0.0; 3]);
        assert_eq!(bottom_up_loads(&m, 3.0), vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "unservable")]
    fn overload_panics() {
        even_loads(2, 2.5);
    }
}
