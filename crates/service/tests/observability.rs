//! The observability plane end to end: SLO defaults and scenario
//! overrides, burn-rate alerting with exemplars resolvable in the flight
//! recorder, the in-protocol `stats`/`metrics` scrape (schema-checked),
//! scrape safety concurrent with re-registration/eviction/traffic, and
//! the zero-denominator pins for every derived rate.

use coolopt_scenario::{presets, SloPolicy};
use coolopt_service::{
    proto, LatencyDoc, ServiceConfig, ServiceCore, SloVerdict, StatsSnapshot, SERVICE_STATS_SCHEMA,
};
use coolopt_telemetry as telemetry;
use serde::{get_field, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A core whose default SLO threshold every real submission breaches, so
/// alerting paths are exercised deterministically.
fn breach_core() -> ServiceCore {
    ServiceCore::new(ServiceConfig {
        slo: SloPolicy {
            latency_threshold_seconds: 1e-12,
            availability_target: 0.999,
        },
        ..ServiceConfig::default()
    })
}

#[test]
fn tenants_inherit_the_service_default_slo() {
    let core = ServiceCore::default();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    let tenant = core.get("testbed_rack20/rack").unwrap();
    assert_eq!(tenant.slo_policy(), SloPolicy::default());
}

#[test]
fn scenario_slo_overrides_win_and_removal_reverts_to_the_default() {
    let core = ServiceCore::default();
    let mut scenario = presets::testbed_rack20(0);
    let override_slo = SloPolicy {
        latency_threshold_seconds: 0.5,
        availability_target: 0.95,
    };
    scenario.policy.slo = Some(override_slo);
    core.register_scenario(&scenario).unwrap();
    let tenant = core.get("testbed_rack20/rack").unwrap();
    assert_eq!(tenant.slo_policy(), override_slo);

    // Re-registering without the override reverts to the service default.
    scenario.policy.slo = None;
    core.register_scenario(&scenario).unwrap();
    assert_eq!(tenant.slo_policy(), SloPolicy::default());
}

#[test]
fn scenario_slo_round_trips_through_json_and_changes_the_content_hash() {
    let mut scenario = presets::testbed_rack20(0);
    let plain_hash = scenario.content_hash();
    scenario.policy.slo = Some(SloPolicy {
        latency_threshold_seconds: 0.25,
        availability_target: 0.99,
    });
    assert_ne!(scenario.content_hash(), plain_hash);
    let json = scenario.to_json();
    let reloaded = coolopt_scenario::Scenario::from_json(&json).unwrap();
    assert_eq!(reloaded.policy.slo, scenario.policy.slo);
}

#[test]
fn breaches_raise_the_burn_alert_and_capture_exemplars() {
    telemetry::init_flight_recorder(telemetry::DEFAULT_FLIGHT_CAPACITY.max(4096));
    let core = breach_core();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    let tenant = core.get("testbed_rack20/rack").unwrap();

    for i in 0..8 {
        tenant.submit_one(1.0 + i as f64).unwrap().unwrap();
    }
    let verdict = tenant.slo_verdict();
    assert_eq!(verdict.attempts, 8);
    assert_eq!(verdict.breaches, 8, "every submission breaches 1 ps");
    assert!(verdict.fast_burn.burn_rate >= coolopt_service::BURN_ALERT_RATE);
    assert!(verdict.slow_burn.burn_rate >= coolopt_service::BURN_ALERT_RATE);
    assert!(verdict.alerting, "sustained burn must alert");
    assert!(!verdict.healthy);
    assert!(!verdict.exemplars.is_empty(), "breaches are tail-sampled");

    // With telemetry compiled in, the exemplar's span id resolves to the
    // `service_batch` span in the flight recorder and the Chrome trace.
    if telemetry::metrics_enabled() {
        let span_id = verdict.exemplars.last().unwrap().span_id;
        assert_ne!(span_id, 0, "exemplars carry the serving batch span");
        let snapshot = telemetry::flight_snapshot();
        let record = snapshot
            .records
            .iter()
            .find(|r| r.id == span_id)
            .expect("exemplar span id resolves in the flight recorder");
        assert_eq!(record.name, "service_batch");
        assert!(snapshot
            .to_chrome_json()
            .contains(&format!("\"id\":{span_id}")));
    }
}

#[test]
fn recovery_clears_the_alert_when_burn_subsides() {
    let core = breach_core();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    let tenant = core.get("testbed_rack20/rack").unwrap();
    tenant.submit_one(1.0).unwrap().unwrap();
    assert!(tenant.slo_verdict().alerting);

    // Loosen the SLO: subsequent evaluation sees zero bad-over-budget and
    // the alert clears (the transition emits the recovery event).
    tenant.set_slo(SloPolicy {
        latency_threshold_seconds: 1e6,
        availability_target: 0.5,
    });
    for i in 0..4 {
        tenant.submit_one(2.0 + i as f64).unwrap().unwrap();
    }
    let verdict = tenant.slo_verdict();
    assert!(verdict.fast_burn.burn_rate < coolopt_service::BURN_ALERT_RATE);
    assert!(!verdict.alerting);
}

#[test]
fn stats_scrape_answers_the_schema_in_protocol() {
    let core = breach_core();
    core.register_scenario(&presets::two_zone_hetero(0))
        .unwrap();
    for tenant in core.tenants() {
        tenant.submit(&[1.0, 2.0, 3.0]).unwrap();
    }

    let line = proto::handle_line(&core, r#"{"cmd":"stats"}"#);
    let doc: Value = serde_json::from_str(&line).unwrap();
    let fields = doc.as_object().expect("stats reply is an object");
    assert_eq!(
        get_field(fields, "schema").unwrap().as_str().unwrap(),
        SERVICE_STATS_SCHEMA
    );
    assert_eq!(
        get_field(fields, "metrics_enabled").unwrap(),
        &Value::Bool(telemetry::metrics_enabled())
    );
    assert!(
        get_field(fields, "uptime_seconds")
            .unwrap()
            .as_f64()
            .unwrap()
            >= 0.0
    );
    let totals = get_field(fields, "totals").unwrap().as_object().unwrap();
    assert_eq!(get_field(totals, "plans").unwrap().as_u64().unwrap(), 6);
    assert_eq!(get_field(totals, "shed").unwrap().as_u64().unwrap(), 0);
    assert_eq!(
        get_field(fields, "shed_rate").unwrap().as_f64().unwrap(),
        0.0
    );

    let tenants = get_field(fields, "tenants").unwrap().as_array().unwrap();
    assert_eq!(tenants.len(), 2, "one row per distinct tenant");
    for row in tenants {
        let row = row.as_object().unwrap();
        assert!(!get_field(row, "key").unwrap().as_str().unwrap().is_empty());
        assert!(get_field(row, "machines").unwrap().as_u64().unwrap() > 0);
        let slo = get_field(row, "slo").unwrap().as_object().unwrap();
        assert_eq!(get_field(slo, "attempts").unwrap().as_u64().unwrap(), 3);
        assert!(get_field(slo, "alerting").unwrap() == &Value::Bool(true));
        let queue_wait = get_field(row, "queue_wait").unwrap().as_object().unwrap();
        let count = get_field(queue_wait, "count").unwrap().as_u64().unwrap();
        if telemetry::metrics_enabled() {
            assert_eq!(count, 3, "windowed attribution records per load");
            let p50 = get_field(queue_wait, "p50_us").unwrap().as_f64().unwrap();
            let p99 = get_field(queue_wait, "p99_us").unwrap().as_f64().unwrap();
            assert!(p50 <= p99);
        } else {
            assert_eq!(count, 0, "windowed histograms are no-ops");
        }
    }
}

#[test]
fn metrics_scrape_answers_prometheus_in_protocol() {
    let core = ServiceCore::default();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    core.submit("testbed_rack20/rack", &[1.0, 2.0]).unwrap();

    let line = proto::handle_line(&core, r#"{"cmd":"metrics"}"#);
    let reply: proto::MetricsReply = serde_json::from_str(&line).unwrap();
    assert_eq!(reply.schema, proto::METRICS_REPLY_SCHEMA);
    assert_eq!(reply.metrics_enabled, telemetry::metrics_enabled());
    if telemetry::metrics_enabled() {
        assert!(reply.prometheus.contains("coolopt_service_plans_total"));
        assert!(reply.prometheus.contains("coolopt_flight_records_dropped"));
    } else {
        assert!(reply.prometheus.is_empty());
        assert_eq!(reply.flight_dropped, 0);
    }
}

#[test]
fn scrapes_are_safe_concurrent_with_reregistration_and_eviction() {
    let core = Arc::new(ServiceCore::default());
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Mutator: flip the scenario between two contents (engine swap +
        // alias churn) and periodically evict/re-register.
        scope.spawn(|| {
            let a = presets::testbed_rack20(0);
            let mut b = presets::testbed_rack20(0);
            b.zones[0].cooling.cf_watts_per_kelvin *= 1.25;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let scenario = if i % 2 == 0 { &a } else { &b };
                core.register_scenario(scenario).unwrap();
                if i % 7 == 6 {
                    core.evict("testbed_rack20/rack");
                    core.register_scenario(&a).unwrap();
                }
                i += 1;
            }
        });
        // Traffic: keep submissions flowing (UnknownTenant during the
        // evict window is expected and fine).
        scope.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = core.submit("testbed_rack20/rack", &[(i % 17) as f64]);
                i += 1;
            }
        });
        // Scrapers: every snapshot must be schema-valid with no torn rows.
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let line = proto::handle_line(&core, r#"{"cmd":"stats"}"#);
                    let doc: Value = serde_json::from_str(&line).unwrap();
                    let fields = doc.as_object().unwrap();
                    assert_eq!(
                        get_field(fields, "schema").unwrap().as_str().unwrap(),
                        SERVICE_STATS_SCHEMA
                    );
                    for row in get_field(fields, "tenants").unwrap().as_array().unwrap() {
                        let row = row.as_object().unwrap();
                        let engine = get_field(row, "engine").unwrap().as_str().unwrap();
                        assert!(matches!(engine, "flat" | "hier" | "none"));
                        let slo = get_field(row, "slo").unwrap().as_object().unwrap();
                        let attempts = get_field(slo, "attempts").unwrap().as_u64().unwrap();
                        let breaches = get_field(slo, "breaches").unwrap().as_u64().unwrap();
                        let shed = get_field(slo, "shed").unwrap().as_u64().unwrap();
                        assert!(breaches + shed <= attempts, "counters never tear");
                    }
                    let _ = proto::handle_line(&core, r#"{"cmd":"metrics"}"#);
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn derived_rates_are_pinned_at_zero_denominators() {
    // Always-on counters with no traffic.
    let empty = StatsSnapshot {
        plans: 0,
        batches: 0,
        coalesced: 0,
        shed: 0,
        batch_size_log2: vec![0; 12],
    };
    assert_eq!(empty.mean_batch_size(), 0.0);
    assert_eq!(empty.shed_rate(), 0.0);

    // Windowed quantiles on an empty window.
    let latency = LatencyDoc::from_snapshot(&telemetry::HistogramSnapshot::default());
    assert_eq!(latency.count, 0);
    assert!(latency.mean_us.is_none());
    assert!(latency.p50_us.is_none() && latency.p99_us.is_none() && latency.p999_us.is_none());

    // A fresh tenant's verdict: no attempts, zero burn, healthy, no alert.
    let core = ServiceCore::default();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    let verdict: SloVerdict = core.get("testbed_rack20/rack").unwrap().slo_verdict();
    assert_eq!(verdict.attempts, 0);
    assert_eq!(verdict.fast_burn.burn_rate, 0.0);
    assert_eq!(verdict.slow_burn.burn_rate, 0.0);
    assert!(verdict.healthy && !verdict.alerting);
    assert!(verdict.exemplars.is_empty());

    // A whole stats doc over an idle core.
    let doc = core.stats_doc();
    assert_eq!(doc.schema, SERVICE_STATS_SCHEMA);
    assert_eq!(doc.mean_batch_size, 0.0);
    assert_eq!(doc.shed_rate, 0.0);
    assert_eq!(doc.tenants.len(), 1);
    assert_eq!(doc.tenants[0].queue_wait.count, 0);
}

#[test]
fn query_scrape_answers_compressed_history_in_protocol() {
    let core = ServiceCore::default();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    core.submit("testbed_rack20/rack", &[1.0, 2.0]).unwrap();

    // Feed the process-global store directly (the serve binary does this
    // through a background Collector); unique names keep this test
    // independent of others sharing the store.
    let db = telemetry::tsdb();
    for i in 0..300i64 {
        db.append("obs_query.power_watts", i * 250, 40.0 + (i % 7) as f64);
    }
    core.sample_into(db, 75_000);

    let line = proto::handle_line(&core, r#"{"cmd":"query","series":"obs_query.*"}"#);
    let reply: proto::QueryReply = serde_json::from_str(&line).unwrap();
    assert_eq!(reply.schema, proto::QUERY_REPLY_SCHEMA);
    assert_eq!(reply.pattern, "obs_query.*");
    assert_eq!(reply.agg, "mean");
    assert_eq!(reply.step_ms, 0);
    assert_eq!(reply.tsdb_enabled, telemetry::metrics_enabled());
    if telemetry::metrics_enabled() {
        assert_eq!(reply.series.len(), 1, "prefix match hits one series");
        let doc = &reply.series[0];
        assert_eq!(doc.name, "obs_query.power_watts");
        assert_eq!(doc.appended, 300);
        assert_eq!(doc.points.len(), 300, "raw window returns every sample");
        assert_eq!(doc.points[0], (0, 40.0));
        assert!(doc.compression_ratio > 1.0, "steady series compress");
        assert!(reply.total_series >= 1 && reply.total_points >= 300);
        assert!(reply.total_stored_bytes > 0);
        assert!(reply.compression_ratio > 1.0);

        // Step alignment + aggregator + window + limit, all honored.
        let line = proto::handle_line(
            &core,
            r#"{"cmd":"query","series":"obs_query.power_watts","start_ms":0,"end_ms":9999,"step_ms":1000,"agg":"max","limit":7}"#,
        );
        let reply: proto::QueryReply = serde_json::from_str(&line).unwrap();
        assert_eq!(reply.agg, "max");
        assert_eq!(reply.step_ms, 1000);
        let doc = &reply.series[0];
        assert_eq!(doc.points.len(), 7, "limit keeps the newest points");
        assert_eq!(doc.points.last().unwrap().0, 9000);
        for &(t, v) in &doc.points {
            assert_eq!(t % 1000, 0, "bucket timestamps align to the step");
            assert!((40.0..=46.0).contains(&v));
        }

        // The collector source landed the service-level series too.
        let line = proto::handle_line(&core, r#"{"cmd":"query","series":"coolopt_service.plans"}"#);
        let reply: proto::QueryReply = serde_json::from_str(&line).unwrap();
        assert_eq!(reply.series.len(), 1);
        assert!(reply.series[0].points.iter().any(|&(_, v)| v >= 2.0));
    } else {
        assert!(reply.series.is_empty(), "no-op store holds nothing");
        assert_eq!(reply.total_points, 0);
        assert_eq!(reply.compression_ratio, 0.0);
    }

    // An unknown aggregator is a request-level error, not a panic.
    match proto::handle_request(&core, r#"{"cmd":"query","agg":"median"}"#) {
        proto::Reply::Plan(response) => {
            assert!(!response.ok);
            assert!(response.error.unwrap().contains("unknown agg"));
        }
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn trace_scrape_ships_a_bounded_chrome_fragment() {
    let core = ServiceCore::default();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();
    core.submit("testbed_rack20/rack", &[1.0, 2.0, 3.0])
        .unwrap();

    let line = proto::handle_line(&core, r#"{"cmd":"trace","limit":5}"#);
    // The trace line is hand-assembled (the fragment is embedded raw), so
    // decode it as a generic tree rather than a typed struct.
    let doc: Value = serde_json::from_str(&line).unwrap();
    let fields = doc.as_object().expect("trace reply is an object");
    assert_eq!(
        get_field(fields, "schema").unwrap().as_str().unwrap(),
        proto::TRACE_REPLY_SCHEMA
    );
    assert_eq!(
        get_field(fields, "trace_enabled").unwrap(),
        &Value::Bool(telemetry::metrics_enabled())
    );
    let total = get_field(fields, "total_records")
        .unwrap()
        .as_u64()
        .unwrap();
    let returned = get_field(fields, "returned").unwrap().as_u64().unwrap();
    assert!(returned <= 5, "limit bounds the shipped records");
    assert!(returned <= total);
    let chrome = get_field(fields, "chrome_json")
        .unwrap()
        .as_object()
        .expect("the fragment embeds as a real JSON object");
    let events = get_field(chrome, "traceEvents")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(events.len() as u64, returned);
    if telemetry::metrics_enabled() {
        assert!(returned > 0, "submissions record spans");
    } else {
        assert_eq!(total, 0);
    }
}
