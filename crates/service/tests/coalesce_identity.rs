//! The service correctness bar: coalescing must be invisible.
//!
//! Every answer a client receives through the admission/coalescing layer
//! must be bit-identical to what a sequential
//! [`IndexSnapshot::query_min_power`] against the tenant's published
//! snapshot returns — under concurrent submitters, mixed valid/invalid
//! loads, burst submissions, and mid-stream engine re-registration.
//!
//! [`IndexSnapshot::query_min_power`]: coolopt_core::IndexSnapshot::query_min_power

use coolopt_core::{IndexSnapshot, PowerTerms};
use coolopt_service::{CoalesceConfig, ServiceConfig, ServiceCore, ServiceError};
use proptest::prelude::*;
use std::sync::Arc;

fn small_model() -> (Vec<(f64, f64)>, PowerTerms) {
    let pairs = vec![
        (10.0, 7.0),
        (2.0, 3.0),
        (1.0, 2.0),
        (0.2, 1.34),
        (5.5, 4.1),
        (3.3, 2.2),
    ];
    (pairs, PowerTerms::unbounded(40.0, 900.0))
}

fn alternate_model() -> (Vec<(f64, f64)>, PowerTerms) {
    let pairs = vec![(8.0, 6.0), (2.5, 3.5), (1.5, 2.5), (0.4, 1.1)];
    (pairs, PowerTerms::unbounded(35.0, 800.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent submitters racing through one tenant's coalescer get
    /// answers bit-identical to the sequential reference path, load by
    /// load — including engine-level errors for negative loads.
    #[test]
    fn coalesced_answers_are_bit_identical_to_sequential(
        pairs in prop::collection::vec((0.5f64..20.0, 0.5f64..10.0), 1..24),
        w2 in 5.0f64..80.0,
        rho in 50.0f64..2000.0,
        loads in prop::collection::vec(-2.0f64..40.0, 8..64),
        threads in 2usize..5,
    ) {
        let core = ServiceCore::default();
        let terms = PowerTerms::unbounded(w2, rho);
        let tenant = core.register_parts("prop", &pairs, terms).unwrap();

        // Sequential reference, one engine, fixed for the whole test.
        let reference: Vec<_> = loads.iter().map(|&l| tenant.plan_sequential(l)).collect();

        let chunk = loads.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (slice, expected) in loads.chunks(chunk).zip(reference.chunks(chunk)) {
                let tenant = Arc::clone(&tenant);
                scope.spawn(move || {
                    // Alternate burst and single submissions.
                    let mut got = Vec::with_capacity(slice.len());
                    for (i, pair) in slice.chunks(2).enumerate() {
                        if i % 2 == 0 {
                            got.extend(tenant.submit(pair).unwrap());
                        } else {
                            for &load in pair {
                                got.push(tenant.submit_one(load).unwrap());
                            }
                        }
                    }
                    assert_eq!(got.len(), expected.len());
                    for (g, e) in got.iter().zip(expected) {
                        assert_eq!(g, e, "coalesced answer diverged from sequential");
                    }
                });
            }
        });
    }
}

/// A burst submitted alone becomes exactly one micro-batch: the stats
/// account one `query_batch` call carrying every load.
#[test]
fn burst_is_one_batch_and_stats_account_it() {
    let core = ServiceCore::default();
    let (pairs, terms) = small_model();
    core.register_parts("burst", &pairs, terms).unwrap();
    let loads: Vec<f64> = (0..16).map(|i| 0.25 * i as f64).collect();
    let results = core.submit("burst", &loads).unwrap();
    assert_eq!(results.len(), loads.len());
    let stats = core.stats().snapshot();
    assert_eq!(stats.plans, 16);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.shed, 0);
    assert!((stats.mean_batch_size() - 16.0).abs() < 1e-12);
    // One batch of 16 → bucket log2(16) = 4.
    assert_eq!(stats.batch_size_log2[4], 1);
}

/// Backpressure sheds with an explicit error — never by silent truncation
/// or unbounded queueing — and the tenant keeps serving afterwards.
#[test]
fn overload_sheds_with_error_and_recovers() {
    let config = ServiceConfig {
        coalesce: CoalesceConfig {
            max_batch: 4,
            max_queued: 4,
        },
        ..ServiceConfig::default()
    };
    let core = ServiceCore::new(config);
    let (pairs, terms) = small_model();
    core.register_parts("tight", &pairs, terms).unwrap();

    // A burst larger than the queue bound is refused atomically.
    let burst: Vec<f64> = (0..8).map(|i| i as f64 * 0.3).collect();
    match core.submit("tight", &burst) {
        Err(ServiceError::Overloaded {
            tenant,
            queued,
            limit,
        }) => {
            assert_eq!(tenant, "tight");
            assert_eq!(limit, 4);
            assert!(queued > limit);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = core.stats().snapshot();
    assert_eq!(stats.shed, 8);
    assert!(stats.shed_rate() > 0.0);

    // Shedding refused the submission; it did not wedge the tenant.
    let ok = core.submit("tight", &[1.0, 2.0]).unwrap();
    assert_eq!(ok.len(), 2);
    assert!(ok[0].as_ref().unwrap().is_some());
}

/// Unknown tenants are an explicit error.
#[test]
fn unknown_tenant_is_reported() {
    let core = ServiceCore::default();
    match core.submit_one("ghost", 1.0) {
        Err(ServiceError::UnknownTenant { tenant }) => assert_eq!(tenant, "ghost"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
}

/// Re-registration churn through the service: readers stream queries while
/// the writer swaps the tenant's engine between two models. Every answer
/// must be bit-identical to the sequential answer of *one* of the two
/// published engines (never a blend), and the generation counter must
/// advance exactly once per model change.
#[test]
fn reregistration_churn_never_blends_engines() {
    const ROUNDS: usize = 12;
    const PROBE: f64 = 1.5;

    let core = Arc::new(ServiceCore::default());
    let (pairs_a, terms_a) = small_model();
    let (pairs_b, terms_b) = alternate_model();

    let expect_a = IndexSnapshot::for_parts(&pairs_a, terms_a)
        .unwrap()
        .query_min_power(PROBE, None)
        .unwrap();
    let expect_b = IndexSnapshot::for_parts(&pairs_b, terms_b)
        .unwrap()
        .query_min_power(PROBE, None)
        .unwrap();
    assert_ne!(
        expect_a, expect_b,
        "churn test needs models that answer differently"
    );

    let tenant = core.register_parts("churn", &pairs_a, terms_a).unwrap();
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let core = Arc::clone(&core);
            let done = &done;
            let (expect_a, expect_b) = (&expect_a, &expect_b);
            scope.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let answer = core.submit_one("churn", PROBE).unwrap().unwrap();
                    assert!(
                        &answer == expect_a || &answer == expect_b,
                        "answer matches neither published engine: {answer:?}"
                    );
                }
            });
        }

        for round in 1..=ROUNDS {
            let generation_before = tenant.generation();
            if round % 2 == 0 {
                core.register_parts("churn", &pairs_a, terms_a).unwrap();
            } else {
                core.register_parts("churn", &pairs_b, terms_b).unwrap();
            }
            assert_eq!(tenant.generation(), generation_before + 1);
        }
        done.store(true, std::sync::atomic::Ordering::Release);
    });

    // After churn settles the tenant answers like its final engine.
    let last = if ROUNDS % 2 == 0 { expect_a } else { expect_b };
    assert_eq!(core.submit_one("churn", PROBE).unwrap().unwrap(), last);
    assert_eq!(tenant.generation(), (ROUNDS + 1) as u64);
}
