//! Registry semantics: scenario registration, content-hash aliasing,
//! eviction, and the wire protocol's encode/decode round trip.

use coolopt_scenario::presets;
use coolopt_service::{proto, ServiceCore, TenantId};
use std::sync::Arc;

#[test]
fn scenario_zones_become_tenants_with_content_hash_aliases() {
    let core = ServiceCore::default();
    let scenario = presets::two_zone_hetero(0);
    let hash = scenario.content_hash();
    let tenants = core.register_scenario(&scenario).unwrap();
    assert_eq!(tenants.len(), scenario.zone_count());
    assert_eq!(core.tenants().len(), scenario.zone_count());

    for (tenant, zone) in tenants.iter().zip(&scenario.zones) {
        let key = format!("{}/{}", scenario.name, zone.name);
        let by_key = core.get(&key).expect("tenant reachable by key");
        let by_hash = core
            .get(&format!("{hash}/{}", zone.name))
            .expect("tenant reachable by content-hash alias");
        assert!(Arc::ptr_eq(&by_key, tenant));
        assert!(Arc::ptr_eq(&by_hash, tenant));
        assert_eq!(tenant.content_hash(), hash);
        assert!(tenant.snapshot().is_some(), "registration publishes");
    }
}

#[test]
fn reregistering_an_edited_scenario_swaps_engines_and_retires_stale_aliases() {
    let core = ServiceCore::default();
    let original = presets::testbed_rack20(0);
    let tenants = core.register_scenario(&original).unwrap();
    assert_eq!(tenants.len(), 1);
    let tenant = Arc::clone(&tenants[0]);
    let generation = tenant.generation();
    let old_hash = original.content_hash();

    // Same name, edited cooling model → same tenant key, new content AND
    // a new model fingerprint (ρ changes with the cooling coefficient).
    let mut edited = presets::testbed_rack20(0);
    edited.zones[0].cooling.cf_watts_per_kelvin *= 1.25;
    assert_ne!(edited.content_hash(), old_hash);
    let reregistered = core.register_scenario(&edited).unwrap();
    assert!(Arc::ptr_eq(&reregistered[0], &tenant), "identity is stable");
    assert_eq!(tenant.generation(), generation + 1, "engine swapped once");
    assert_eq!(tenant.content_hash(), edited.content_hash());

    // The new alias resolves; the stale one no longer does.
    let zone = &edited.zones[0].name;
    assert!(core
        .get(&format!("{}/{zone}", edited.content_hash()))
        .is_some());
    assert!(core.get(&format!("{old_hash}/{zone}")).is_none());

    // Idempotent re-registration: unchanged content is a fingerprint hit.
    core.register_scenario(&edited).unwrap();
    assert_eq!(tenant.generation(), generation + 1);
}

#[test]
fn eviction_retires_key_and_alias_but_in_flight_handles_survive() {
    let core = ServiceCore::default();
    let scenario = presets::testbed_rack20(0);
    let tenants = core.register_scenario(&scenario).unwrap();
    let tenant = Arc::clone(&tenants[0]);
    let key = tenant.key().to_string();
    let alias = format!("{}/{}", scenario.content_hash(), scenario.zones[0].name);

    let evicted = core.evict(&key).expect("tenant was registered");
    assert!(Arc::ptr_eq(&evicted, &tenant));
    assert!(core.get(&key).is_none());
    assert!(core.get(&alias).is_none());
    assert!(core.tenants().is_empty());

    // A handle obtained before eviction still answers.
    assert!(tenant.submit_one(5.0).unwrap().unwrap().is_some());
}

#[test]
fn eviction_by_alias_retires_the_primary_key_too() {
    let core = ServiceCore::default();
    let scenario = presets::testbed_rack20(0);
    let tenants = core.register_scenario(&scenario).unwrap();
    let key = tenants[0].key().to_string();
    let alias = format!("{}/{}", scenario.content_hash(), scenario.zones[0].name);
    assert!(core.evict(&alias).is_some());
    assert!(core.get(&key).is_none());
    assert!(core.get(&alias).is_none());
}

#[test]
fn tenant_ids_are_stable_fnv() {
    // Pinned: ids are part of the wire-observable surface (span attrs).
    assert_eq!(TenantId::of(""), TenantId::of(""));
    assert_ne!(TenantId::of("a"), TenantId::of("b"));
    assert_eq!(format!("{}", TenantId::of("")), "cbf29ce484222325");
}

/// Decodes a `handle_line` reply that must be a planning [`proto::Response`].
fn plan_reply(core: &ServiceCore, line: &str) -> proto::Response {
    match proto::handle_request(core, line) {
        proto::Reply::Plan(response) => response,
        other => panic!("expected a plan response, got {other:?}"),
    }
}

#[test]
fn proto_round_trips_and_reports_errors() {
    let core = ServiceCore::default();
    core.register_scenario(&presets::testbed_rack20(0)).unwrap();

    let response = plan_reply(
        &core,
        r#"{"tenant":"testbed_rack20/rack","loads":[1.0,-2.0,25.0]}"#,
    );
    assert!(response.ok);
    assert_eq!(response.results.len(), 3);
    assert!(response.results[0].feasible && response.results[0].plan.is_some());
    assert!(!response.results[1].feasible);
    assert!(response.results[1].error.is_some(), "negative load errors");
    assert!(!response.results[2].feasible);
    assert!(
        response.results[2].error.is_none(),
        "overload is infeasible, not an error"
    );

    // Encode → decode is lossless, and `handle_line` is the encoded form.
    let encoded = serde_json::to_string(&response).unwrap();
    let decoded: proto::Response = serde_json::from_str(&encoded).unwrap();
    assert_eq!(decoded, response);
    let line = proto::handle_line(
        &core,
        r#"{"tenant":"testbed_rack20/rack","loads":[1.0,-2.0,25.0]}"#,
    );
    let decoded: proto::Response = serde_json::from_str(&line).unwrap();
    assert_eq!(decoded.results.len(), 3);

    let unknown = plan_reply(&core, r#"{"tenant":"ghost","load":1.0}"#);
    assert!(!unknown.ok && unknown.error.is_some());
    let malformed = plan_reply(&core, "not json");
    assert!(!malformed.ok && malformed.error.is_some());
    let empty = plan_reply(&core, r#"{"tenant":"testbed_rack20/rack"}"#);
    assert!(!empty.ok && empty.error.is_some());
    let bogus = plan_reply(&core, r#"{"cmd":"selfdestruct"}"#);
    assert!(!bogus.ok && bogus.error.unwrap().contains("unknown command"));

    // An explicit `"cmd":"plan"` is the same as no cmd at all.
    let explicit = plan_reply(
        &core,
        r#"{"cmd":"plan","tenant":"testbed_rack20/rack","load":1.0}"#,
    );
    assert!(explicit.ok && explicit.results.len() == 1);
}
