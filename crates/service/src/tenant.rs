//! Tenants: one published engine + one admission queue per room/zone.
//!
//! A [`Tenant`] owns the pieces the service needs to answer queries for one
//! planning domain (one zone of one scenario, or an explicitly registered
//! `(pairs, terms)` model): a [`SnapshotCell`] holding the published engine
//! (flat or hierarchical, auto-selected by machine count) and a
//! [`Coalescer`] batching its concurrent queries. Tenants are addressed by
//! [`TenantId`] — a stable 64-bit FNV-1a hash of the tenant's key string —
//! so lookups never compare strings on the hot path.

use crate::coalesce::{BatchMeta, Coalescer};
use crate::core::{ServiceConfig, ServiceStats};
use crate::slo::{SloState, SloVerdict};
use crate::{PlanResult, ServiceError};
use coolopt_core::SnapshotCell;
use coolopt_core::{IndexSnapshot, ModelFingerprint, PowerTerms, SolveError};
use coolopt_scenario::{zone_machines, Scenario, SloPolicy};
use coolopt_telemetry as telemetry;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Stable tenant address: FNV-1a over the tenant's key string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// The id of the tenant keyed by `key` (e.g. `"testbed_rack20/rack"`).
    pub fn of(key: &str) -> Self {
        // FNV-1a, the same construction ModelFingerprint uses — cheap,
        // deterministic, and stable across processes.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TenantId(hash)
    }

    /// The raw 64-bit value (used as shard selector and span attribute).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The planning parts of one scenario zone: what a tenant's engine is
/// built from.
#[derive(Debug, Clone)]
pub struct ZoneParts {
    /// The zone's name inside its scenario.
    pub zone: String,
    /// Per-machine `(a_i, b_i) = (K_i, α_i/β_i)` consolidation pairs.
    pub pairs: Vec<(f64, f64)>,
    /// The zone's aggregate power terms.
    pub terms: PowerTerms,
}

/// Derives per-zone planning parts from a scenario's declared models — the
/// same derivation the fleet-scale smoke plans use: pairs from each
/// machine's `(K_i, α_i/β_i)` at the policy's planning `T_max`, and terms
/// from the zone means `w̄₂` and `ρ = c_f · w̄₁`, with the optional AC cap
/// mapped into normalized units as `t_cap = T_ac_cap / w̄₁`.
pub fn zone_parts(scenario: &Scenario) -> Result<Vec<ZoneParts>, ServiceError> {
    let t_max = scenario.policy.planning_t_max();
    scenario
        .zones
        .iter()
        .map(|spec| {
            let machines =
                zone_machines(scenario, spec).map_err(|e| ServiceError::Scenario(e.to_string()))?;
            if machines.is_empty() {
                return Err(ServiceError::Scenario(format!(
                    "zone {:?} declares no machines",
                    spec.name
                )));
            }
            let pairs: Vec<(f64, f64)> = machines
                .iter()
                .map(|m| {
                    (
                        m.thermal.k_coefficient(t_max, &m.power),
                        m.thermal.alpha_over_beta(),
                    )
                })
                .collect();
            let n = machines.len() as f64;
            let mean_w1 = machines
                .iter()
                .map(|m| m.power.w1().as_watts())
                .sum::<f64>()
                / n;
            let mean_w2 = machines
                .iter()
                .map(|m| m.power.w2().as_watts())
                .sum::<f64>()
                / n;
            let mut terms =
                PowerTerms::unbounded(mean_w2, spec.cooling.cf_watts_per_kelvin * mean_w1);
            terms.t_cap = spec.cooling.t_ac_cap.map(|t| t.as_kelvin() / mean_w1);
            Ok(ZoneParts {
                zone: spec.name.clone(),
                pairs,
                terms,
            })
        })
        .collect()
}

/// One registered planning domain: a published engine plus its admission
/// queue. See the module docs.
#[derive(Debug)]
pub struct Tenant {
    id: TenantId,
    key: String,
    cell: SnapshotCell,
    coalescer: Coalescer,
    /// Content hash of the scenario this tenant was last registered from
    /// (empty for explicit `register_parts` tenants) and the registry
    /// alias id derived from it, so re-registration can retire the stale
    /// alias.
    content: Mutex<ContentMeta>,
    /// Per-tenant served-plans counter (a leaked static name — bounded by
    /// the number of distinct tenants a process ever registers, the same
    /// lifetime the metrics registry itself gives every metric).
    plans: &'static telemetry::Counter,
    /// Windowed latency attribution + always-on SLO accounting.
    obs: TenantObs,
}

/// Per-tenant observability state: windowed queue-wait/run histograms
/// (zero-sized without the `telemetry` feature) and the always-compiled
/// [`SloState`].
#[derive(Debug)]
struct TenantObs {
    /// Join → batch start, per load, over the sliding window.
    queue_wait: telemetry::WindowedHistogram,
    /// Batch start → answers published, per load, over the sliding window.
    run: telemetry::WindowedHistogram,
    /// Error-budget / burn-rate accounting (always on).
    slo: SloState,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct ContentMeta {
    pub(crate) hash: String,
    pub(crate) alias: Option<TenantId>,
}

impl Tenant {
    /// A fresh tenant keyed by `key`, with no engine published yet —
    /// callers publish one via [`Tenant::publish`] before serving. The
    /// SLO policy starts at the service default; scenario registration
    /// overrides it per the scenario's policy block.
    pub(crate) fn new(key: &str, config: &ServiceConfig, stats: Arc<ServiceStats>) -> Self {
        let id = TenantId::of(key);
        let plans = telemetry::counter(leak_metric_name(key));
        let obs = TenantObs {
            queue_wait: telemetry::WindowedHistogram::new(
                telemetry::DEFAULT_LATENCY_BUCKETS,
                config.slo_window_seconds,
                config.slo_windows,
            ),
            run: telemetry::WindowedHistogram::new(
                telemetry::DEFAULT_LATENCY_BUCKETS,
                config.slo_window_seconds,
                config.slo_windows,
            ),
            slo: SloState::new(
                key,
                config.slo,
                config.slo_window_seconds,
                config.slo_windows,
            ),
        };
        Tenant {
            id,
            key: key.to_string(),
            cell: SnapshotCell::new(),
            coalescer: Coalescer::new(config.coalesce, stats, id.raw()),
            content: Mutex::new(ContentMeta::default()),
            plans,
            obs,
        }
    }

    /// The tenant's stable address.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The key string this tenant was registered under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The content hash of the scenario this tenant was registered from,
    /// if any.
    pub fn content_hash(&self) -> String {
        self.content
            .lock()
            .expect("content lock poisoned")
            .hash
            .clone()
    }

    pub(crate) fn content_meta(&self) -> ContentMeta {
        self.content.lock().expect("content lock poisoned").clone()
    }

    pub(crate) fn set_content_meta(&self, meta: ContentMeta) {
        *self.content.lock().expect("content lock poisoned") = meta;
    }

    /// The tenant's snapshot cell (exposed for tests and the bench).
    pub fn cell(&self) -> &SnapshotCell {
        &self.cell
    }

    /// Loads currently pending in this tenant's admission queue.
    pub fn queued(&self) -> usize {
        self.coalescer.queued()
    }

    /// Publication count of this tenant's cell — bumps once per engine
    /// swap, never on fingerprint-identical re-registration.
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// Builds (outside any lock) and publishes the engine for `pairs` and
    /// `terms`, keyed by their fingerprint. A re-publish with an unchanged
    /// fingerprint is a cheap hit; a changed fingerprint atomically swaps
    /// the engine while in-flight batches finish on the old one.
    pub fn publish(
        &self,
        pairs: &[(f64, f64)],
        terms: PowerTerms,
    ) -> Result<Arc<IndexSnapshot>, ServiceError> {
        let fingerprint = ModelFingerprint::of_parts(pairs, &terms);
        self.cell
            .ensure(fingerprint, || IndexSnapshot::for_parts(pairs, terms))
            .map_err(ServiceError::Solve)
    }

    /// The currently published engine, if any.
    pub fn snapshot(&self) -> Option<Arc<IndexSnapshot>> {
        self.cell.load()
    }

    /// Answers `load` sequentially — the un-coalesced reference path the
    /// identity tests compare against.
    pub fn plan_sequential(&self, load: f64) -> PlanResult {
        match self.cell.load() {
            Some(snapshot) => snapshot.query_min_power(load, None),
            None => Err(SolveError::Infeasible {
                reason: format!("tenant {:?} has no published engine", self.key),
            }),
        }
    }

    /// Submits a burst of loads through the coalescer and blocks for their
    /// answers: one [`PlanResult`] per load, in order, each bit-identical
    /// to [`Tenant::plan_sequential`] against the engine published when
    /// the micro-batch ran.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when admission sheds the burst — none
    /// of its loads were planned.
    pub fn submit(&self, loads: &[f64]) -> Result<Vec<PlanResult>, ServiceError> {
        let begin = Instant::now();
        // Loads the engine would reject (negative or non-finite) bypass
        // the batch and are answered directly, so their errors are exactly
        // the sequential ones and a bad load can never poison a batch.
        let admissible = |l: f64| l.is_finite() && l >= 0.0;
        let submitted = if loads.iter().all(|&l| admissible(l)) {
            self.submit_admissible(loads)
        } else {
            let valid: Vec<f64> = loads.iter().copied().filter(|&l| admissible(l)).collect();
            self.submit_admissible(&valid).map(|(answers, meta)| {
                let mut batched = answers.into_iter();
                let results = loads
                    .iter()
                    .map(|&load| {
                        if admissible(load) {
                            batched.next().expect("one answer per admissible load")
                        } else {
                            self.plan_sequential(load)
                        }
                    })
                    .collect();
                (results, meta)
            })
        };
        let (results, meta) = match submitted {
            Ok(v) => v,
            Err(e) => {
                if matches!(e, ServiceError::Overloaded { .. }) {
                    self.obs
                        .slo
                        .record_shed(self.obs.slo.elapsed_ns(), loads.len() as u64);
                }
                return Err(e);
            }
        };
        let elapsed = begin.elapsed().as_secs_f64();
        let n = loads.len() as u64;
        if let Some(meta) = meta {
            self.obs
                .queue_wait
                .observe_n(meta.queue_wait.as_secs_f64(), n);
            self.obs.run.observe_n(meta.run.as_secs_f64(), n);
        }
        self.obs.slo.record_served(
            self.obs.slo.elapsed_ns(),
            n,
            elapsed,
            meta.map_or(0, |m| m.span_id),
        );
        self.plans.add(n);
        telemetry::histogram("coolopt_service_reply_seconds").observe(elapsed);
        Ok(results)
    }

    /// Convenience wrapper: submit one load.
    pub fn submit_one(&self, load: f64) -> Result<PlanResult, ServiceError> {
        let mut results = self.submit(std::slice::from_ref(&load))?;
        Ok(results.pop().expect("one answer for one load"))
    }

    fn submit_admissible(
        &self,
        loads: &[f64],
    ) -> Result<(Vec<PlanResult>, Option<BatchMeta>), ServiceError> {
        if loads.is_empty() {
            return Ok((Vec::new(), None));
        }
        let (outcome, meta) =
            self.coalescer
                .submit(loads, &self.cell)
                .map_err(|shed| ServiceError::Overloaded {
                    tenant: self.key.clone(),
                    queued: shed.queued,
                    limit: shed.limit,
                })?;
        let results = match outcome {
            Ok(answers) => answers.into_iter().map(Ok).collect(),
            // An engine-level batch error mirrors what every sequential
            // call would have returned (validation is per-load, so with
            // admissible loads this arm is unreachable in practice).
            Err(e) => loads.iter().map(|_| Err(e.clone())).collect(),
        };
        Ok((results, Some(meta)))
    }

    /// The tenant's current SLO policy.
    pub fn slo_policy(&self) -> SloPolicy {
        self.obs.slo.policy()
    }

    /// Replaces the SLO policy; applies to subsequent accounting (the
    /// windows already recorded keep their old verdicts' raw counts).
    pub fn set_slo(&self, policy: SloPolicy) {
        self.obs.slo.set_policy(policy);
    }

    /// Evaluates the tenant's SLO now: burn rates over the fast and slow
    /// windows, alert state, totals and tail-sampled exemplars.
    pub fn slo_verdict(&self) -> SloVerdict {
        self.obs.slo.verdict()
    }

    /// The sliding-window span (seconds per window, window count) this
    /// tenant accounts over.
    pub fn slo_window(&self) -> (f64, usize) {
        (self.obs.slo.window_seconds(), self.obs.slo.windows())
    }

    /// Windowed queue-wait latency (join → batch start) over the last
    /// `windows` windows. Empty without the `telemetry` feature.
    pub fn queue_wait_windowed(&self, windows: usize) -> telemetry::HistogramSnapshot {
        self.obs.queue_wait.windowed(windows)
    }

    /// Windowed batch-run latency (batch start → publish) over the last
    /// `windows` windows. Empty without the `telemetry` feature.
    pub fn run_windowed(&self, windows: usize) -> telemetry::HistogramSnapshot {
        self.obs.run.windowed(windows)
    }
}

/// Leaks a per-tenant metric name into a `'static` string, sanitized to
/// the metric-name alphabet. Bounded by the number of distinct tenants.
fn leak_metric_name(key: &str) -> &'static str {
    let sanitized: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    Box::leak(format!("coolopt_service_tenant_{sanitized}_plans_total").into_boxed_str())
}
