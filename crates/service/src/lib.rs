//! Planner-as-a-service: a sharded, multi-tenant concurrent query core.
//!
//! The consolidation engine answers a min-power plan query in well under a
//! microsecond when queries arrive *batched* ([`IndexSnapshot::query_batch`]
//! amortizes the envelope walk over the whole batch), but an online
//! controller does not see batches — it sees thousands of independent rooms
//! (*tenants*), each producing a continuous stream of single load queries
//! from many concurrent clients. This crate turns the engine into that
//! controller:
//!
//! * [`TenantRegistry`] — a sharded map `scenario content_hash → tenant`.
//!   Each tenant wraps the PR 3 [`SnapshotCell`]: reads are a pointer
//!   clone, registration/eviction take one short per-shard lock, and
//!   re-registering a changed scenario atomically swaps the published
//!   engine while in-flight queries keep the old one. Engine selection
//!   (exact flat vs hierarchical clustered) follows
//!   [`IndexSnapshot::for_parts`] unchanged.
//! * [`Coalescer`] — the admission layer. Concurrent submissions for the
//!   same tenant gather in a *filling* micro-batch; one submitter becomes
//!   the batch leader, waits its turn on the tenant's run token (at most
//!   one batch of a tenant plans at a time, so the next batch fills
//!   exactly while the current one runs — self-clocking group commit),
//!   drains the batch through one `query_batch` call and distributes the
//!   answers. Queues are bounded: past
//!   [`CoalesceConfig::max_queued`] pending loads a submission is **shed
//!   with an explicit error** ([`ServiceError::Overloaded`]) rather than
//!   queued without bound.
//! * [`ServiceCore`] — ties the two together and carries always-on
//!   [`ServiceStats`] (plans served, batches, shed count, batch-size
//!   distribution) plus, with the `telemetry` feature, per-tenant counters,
//!   latency histograms and `service_batch → plan_batch → reply` flight-
//!   recorder spans.
//! * The **observability plane** — every submission's latency is split
//!   into *queue wait* (join → batch start) and *run* (batch start →
//!   publish) and recorded into per-tenant sliding-window histograms;
//!   an always-on per-tenant SLO engine ([`slo`]) does error-budget and
//!   multi-window burn-rate accounting against the tenant's declared
//!   [`SloPolicy`] (service default or the scenario's policy block),
//!   raising `warn`-level events with tail-sampled exemplar span ids on
//!   sustained burn. A live service answers in-protocol `stats`
//!   (schema `coolopt-service-stats-v1`, see [`stats`]) and `metrics`
//!   (Prometheus text) scrapes concurrent with planning traffic.
//!
//! # Correctness bar
//!
//! Coalescing must be invisible: the answer a client gets for load `L` is
//! bit-identical to what a sequential [`IndexSnapshot::query_min_power`]
//! against the tenant's published snapshot would return — the same
//! discipline that pins batched ≡ sequential at the index layer and
//! serial ≡ parallel in the builder. `tests/coalesce_identity.rs` proptests
//! this under real thread interleavings.
//!
//! [`SnapshotCell`]: coolopt_core::SnapshotCell
//! [`IndexSnapshot::query_batch`]: coolopt_core::IndexSnapshot::query_batch
//! [`IndexSnapshot::for_parts`]: coolopt_core::IndexSnapshot::for_parts
//! [`IndexSnapshot::query_min_power`]: coolopt_core::IndexSnapshot::query_min_power

#![warn(missing_docs)]

pub mod coalesce;
pub mod core;
pub mod proto;
pub mod registry;
pub mod slo;
pub mod stats;
pub mod tenant;

pub use crate::core::{ServiceConfig, ServiceCore, ServiceStats, StatsSnapshot};
pub use coalesce::{BatchMeta, CoalesceConfig, Coalescer};
pub use coolopt_scenario::SloPolicy;
pub use registry::TenantRegistry;
pub use slo::{BurnWindow, Exemplar, SloVerdict, BURN_ALERT_RATE};
pub use stats::{LatencyDoc, ServiceStatsDoc, TenantStatsDoc, SERVICE_STATS_SCHEMA};
pub use tenant::{Tenant, TenantId};

use coolopt_core::SolveError;
use std::fmt;

/// One per-load outcome: the minimum-power consolidation (or `None` when no
/// subset can carry the load), exactly as the engine's sequential query
/// would report it.
pub type PlanResult = Result<Option<coolopt_core::Consolidation>, SolveError>;

/// Service-layer error.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The tenant is not registered (or was evicted).
    UnknownTenant {
        /// The requested tenant.
        tenant: String,
    },
    /// Backpressure: the tenant's admission queue is full and the
    /// submission was shed instead of queued without bound.
    Overloaded {
        /// The overloaded tenant.
        tenant: String,
        /// Pending loads at shed time.
        queued: usize,
        /// The configured queue bound.
        limit: usize,
    },
    /// The engine rejected the query (mirrors the sequential error).
    Solve(SolveError),
    /// A scenario could not be turned into tenants.
    Scenario(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            ServiceError::Overloaded {
                tenant,
                queued,
                limit,
            } => write!(
                f,
                "tenant {tenant:?} overloaded: {queued} loads pending (limit {limit})"
            ),
            ServiceError::Solve(e) => write!(f, "query failed: {e}"),
            ServiceError::Scenario(reason) => write!(f, "scenario rejected: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SolveError> for ServiceError {
    fn from(e: SolveError) -> Self {
        ServiceError::Solve(e)
    }
}
