//! Per-tenant SLO engine: error budgets, multi-window burn rates, and
//! tail-sampled exemplars.
//!
//! Every tenant carries an [`SloState`] — always compiled, independent of
//! the `telemetry` feature, because shedding and budget decisions must
//! work in every build. It counts *attempts* (every submitted load) and
//! *bad* outcomes (shed by backpressure, or served over the declared
//! latency threshold) in a ring of rotating windows of plain relaxed
//! atomics, so recording is lock-free and allocation-free.
//!
//! Burn-rate semantics follow the multi-window discipline: with error
//! budget `1 − availability_target`, the burn rate over a window is
//! `(bad / attempts) / budget` — 1.0 means the budget is being consumed
//! exactly as fast as the SLO allows. The engine alerts (a `warn`-level
//! event on the levelled stream) only when **both** the fast view (the
//! newest window) and the slow view (the whole ring) burn at
//! [`BURN_ALERT_RATE`] or faster, so a single slow batch does not page
//! but a sustained breach does; recovery emits an `info` event.
//!
//! Breaching submissions are tail-sampled as [`Exemplar`]s carrying the
//! flight-recorder span id of the micro-batch that served them, so a slow
//! plan in a `stats` scrape links directly to its `service_batch` span in
//! the exported Chrome trace (span id 0 when telemetry is compiled out).

use coolopt_scenario::SloPolicy;
use coolopt_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Windows in the fast burn view (the newest one).
const FAST_WINDOWS: u64 = 1;

/// Burn rate at which the multi-window alert trips: budget consumed at
/// twice the sustainable pace on both the fast and the slow view.
pub const BURN_ALERT_RATE: f64 = 2.0;

/// Most recent breaching submissions retained as exemplars.
const EXEMPLAR_CAP: usize = 4;

/// One tail-sampled SLO breach: a submission over the latency threshold,
/// linked to the flight-recorder span of the micro-batch that served it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// `service_batch` span id in the flight recorder / Chrome trace
    /// (0 when telemetry is compiled out or the batch had no span).
    pub span_id: u64,
    /// The breaching submission's client-visible latency.
    pub latency_seconds: f64,
    /// Loads the submission carried.
    pub loads: u64,
}

/// Error-budget burn over one view (the fast window or the whole ring).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnWindow {
    /// The view's span in seconds.
    pub window_seconds: f64,
    /// Loads attempted in the view.
    pub attempts: u64,
    /// Loads shed or served over the latency threshold in the view.
    pub bad: u64,
    /// `(bad / attempts) / (1 − availability_target)`; 0 when the view is
    /// empty (no traffic burns no budget).
    pub burn_rate: f64,
}

/// A point-in-time SLO evaluation for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// The declared latency threshold (s).
    pub latency_threshold_seconds: f64,
    /// The declared availability target.
    pub availability_target: f64,
    /// All-time attempted loads (served + shed).
    pub attempts: u64,
    /// All-time loads served over the latency threshold.
    pub breaches: u64,
    /// All-time loads shed by backpressure.
    pub shed: u64,
    /// Burn over the newest window.
    pub fast_burn: BurnWindow,
    /// Burn over the whole ring.
    pub slow_burn: BurnWindow,
    /// `true` while the multi-window burn-rate alert is raised.
    pub alerting: bool,
    /// `true` while the slow view burns under 1.0 — the budget lasts.
    pub healthy: bool,
    /// Most recent breaching submissions, oldest first.
    pub exemplars: Vec<Exemplar>,
}

/// One rotating window's counters. `tag` is `window_index + 1` (0 means
/// "never used"), so reusing a slot for a new window is one CAS; racing
/// recorders of a window being retired may lose a handful of samples at
/// the boundary, never corrupt a count.
#[derive(Debug, Default)]
struct WindowSlot {
    tag: AtomicU64,
    attempts: AtomicU64,
    bad: AtomicU64,
}

/// Always-on per-tenant SLO accounting. See the module docs.
#[derive(Debug)]
pub(crate) struct SloState {
    /// Tenant key, for event attribution.
    key: String,
    window_ns: u64,
    epoch: Instant,
    /// Current policy as f64 bits (updatable on re-registration without a
    /// lock on the record path).
    threshold_bits: AtomicU64,
    target_bits: AtomicU64,
    slots: Box<[WindowSlot]>,
    attempts_total: AtomicU64,
    breaches_total: AtomicU64,
    shed_total: AtomicU64,
    alerting: AtomicBool,
    exemplars: Mutex<VecDeque<Exemplar>>,
}

impl SloState {
    pub(crate) fn new(key: &str, policy: SloPolicy, window_secs: f64, windows: usize) -> Self {
        let window_ns = if window_secs.is_finite() && window_secs > 0.0 {
            ((window_secs * 1e9) as u64).max(1)
        } else {
            10_000_000_000
        };
        SloState {
            key: key.to_string(),
            window_ns,
            epoch: Instant::now(),
            threshold_bits: AtomicU64::new(policy.latency_threshold_seconds.to_bits()),
            target_bits: AtomicU64::new(policy.availability_target.to_bits()),
            slots: (0..windows.max(1)).map(|_| WindowSlot::default()).collect(),
            attempts_total: AtomicU64::new(0),
            breaches_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            alerting: AtomicBool::new(false),
            exemplars: Mutex::new(VecDeque::with_capacity(EXEMPLAR_CAP)),
        }
    }

    pub(crate) fn policy(&self) -> SloPolicy {
        SloPolicy {
            latency_threshold_seconds: f64::from_bits(self.threshold_bits.load(Ordering::Relaxed)),
            availability_target: f64::from_bits(self.target_bits.load(Ordering::Relaxed)),
        }
    }

    pub(crate) fn set_policy(&self, policy: SloPolicy) {
        self.threshold_bits.store(
            policy.latency_threshold_seconds.to_bits(),
            Ordering::Relaxed,
        );
        self.target_bits
            .store(policy.availability_target.to_bits(), Ordering::Relaxed);
    }

    /// Nanoseconds since this state's epoch — the timestamp domain of the
    /// `_at_ns` record/verdict methods (explicit for deterministic tests).
    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub(crate) fn window_seconds(&self) -> f64 {
        self.window_ns as f64 / 1e9
    }

    pub(crate) fn windows(&self) -> usize {
        self.slots.len()
    }

    /// Records one served submission of `loads` loads with client-visible
    /// latency `latency_seconds`, attributed to the batch span `span_id`.
    pub(crate) fn record_served(&self, at_ns: u64, loads: u64, latency_seconds: f64, span_id: u64) {
        if loads == 0 {
            return;
        }
        let w = at_ns / self.window_ns;
        let slot = self.claim(w);
        slot.attempts.fetch_add(loads, Ordering::Relaxed);
        // Attempts are bumped before bad counts, and bad counts are
        // released / acquired, so a concurrent reader can never observe
        // `breaches + shed > attempts`.
        self.attempts_total.fetch_add(loads, Ordering::Relaxed);
        if latency_seconds > f64::from_bits(self.threshold_bits.load(Ordering::Relaxed)) {
            slot.bad.fetch_add(loads, Ordering::Relaxed);
            self.breaches_total.fetch_add(loads, Ordering::Release);
            let mut exemplars = self.exemplars.lock().expect("exemplar lock poisoned");
            if exemplars.len() == EXEMPLAR_CAP {
                exemplars.pop_front();
            }
            exemplars.push_back(Exemplar {
                span_id,
                latency_seconds,
                loads,
            });
        }
        self.evaluate(w);
    }

    /// Records `loads` loads refused by backpressure.
    pub(crate) fn record_shed(&self, at_ns: u64, loads: u64) {
        if loads == 0 {
            return;
        }
        let w = at_ns / self.window_ns;
        let slot = self.claim(w);
        slot.attempts.fetch_add(loads, Ordering::Relaxed);
        slot.bad.fetch_add(loads, Ordering::Relaxed);
        self.attempts_total.fetch_add(loads, Ordering::Relaxed);
        self.shed_total.fetch_add(loads, Ordering::Release);
        self.evaluate(w);
    }

    /// The full verdict, evaluated now.
    pub(crate) fn verdict(&self) -> SloVerdict {
        self.verdict_at_ns(self.elapsed_ns())
    }

    /// The full verdict at the explicit epoch offset `at_ns`.
    pub(crate) fn verdict_at_ns(&self, at_ns: u64) -> SloVerdict {
        let w = at_ns / self.window_ns;
        let policy = self.policy();
        let (fast, slow, alerting) = self.evaluate(w);
        // Bad counts first (acquire pairs with the record-side release),
        // attempts last: every bad load read here has its attempt visible.
        let breaches = self.breaches_total.load(Ordering::Acquire);
        let shed = self.shed_total.load(Ordering::Acquire);
        SloVerdict {
            latency_threshold_seconds: policy.latency_threshold_seconds,
            availability_target: policy.availability_target,
            attempts: self.attempts_total.load(Ordering::Relaxed),
            breaches,
            shed,
            fast_burn: fast,
            slow_burn: slow,
            alerting,
            healthy: slow.burn_rate < 1.0,
            exemplars: self
                .exemplars
                .lock()
                .expect("exemplar lock poisoned")
                .iter()
                .copied()
                .collect(),
        }
    }

    /// The slot for window `w`, reset and retagged when this is the first
    /// record of the window. A slot is only ever claimed *forward* —
    /// stragglers carrying an already-retired window index record into
    /// the newest owner instead of resurrecting the old window.
    fn claim(&self, w: u64) -> &WindowSlot {
        let slot = &self.slots[(w % self.slots.len() as u64) as usize];
        let tag = w + 1;
        let seen = slot.tag.load(Ordering::Acquire);
        if tag > seen
            && slot
                .tag
                .compare_exchange(seen, tag, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            slot.attempts.store(0, Ordering::Release);
            slot.bad.store(0, Ordering::Release);
        }
        slot
    }

    /// Sums attempts/bad over the last `k` windows ending at `w`.
    fn view(&self, w: u64, k: u64) -> (u64, u64) {
        let lo = (w + 1).saturating_sub(k);
        let mut attempts = 0;
        let mut bad = 0;
        for slot in self.slots.iter() {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == 0 {
                continue;
            }
            let window = tag - 1;
            if window >= lo && window <= w {
                attempts += slot.attempts.load(Ordering::Relaxed);
                bad += slot.bad.load(Ordering::Relaxed);
            }
        }
        (attempts, bad)
    }

    /// Computes both burn views at window `w` and drives the alert state
    /// machine, emitting `warn` (raise) / `info` (recover) events on
    /// transitions.
    fn evaluate(&self, w: u64) -> (BurnWindow, BurnWindow, bool) {
        let policy = self.policy();
        // Validation keeps the target strictly inside (0, 1); the floor
        // guards explicitly-constructed configs against a zero budget.
        let budget = (1.0 - policy.availability_target).max(1e-9);
        let burn = |k: u64| {
            let (attempts, bad) = self.view(w, k);
            let rate = if attempts == 0 {
                0.0
            } else {
                (bad as f64 / attempts as f64) / budget
            };
            BurnWindow {
                window_seconds: k as f64 * self.window_ns as f64 / 1e9,
                attempts,
                bad,
                burn_rate: rate,
            }
        };
        let fast = burn(FAST_WINDOWS);
        let slow = burn(self.slots.len() as u64);
        let alerting = fast.burn_rate >= BURN_ALERT_RATE && slow.burn_rate >= BURN_ALERT_RATE;
        let was = self.alerting.swap(alerting, Ordering::AcqRel);
        if alerting && !was {
            let exemplar_span = self
                .exemplars
                .lock()
                .expect("exemplar lock poisoned")
                .back()
                .map_or(0, |e| e.span_id);
            telemetry::warn!(
                "slo",
                "error budget burn-rate alert",
                tenant = self.key.clone(),
                burn_fast = fast.burn_rate,
                burn_slow = slow.burn_rate,
                threshold_seconds = policy.latency_threshold_seconds,
                exemplar_span = exemplar_span
            );
        } else if was && !alerting {
            telemetry::info!(
                "slo",
                "error budget burn recovered",
                tenant = self.key.clone(),
                burn_fast = fast.burn_rate,
                burn_slow = slow.burn_rate
            );
        }
        (fast, slow, alerting)
    }
}
