//! The service stats snapshot document: schema `coolopt-service-stats-v1`.
//!
//! [`ServiceCore::stats_doc`] freezes the whole observability plane into
//! one serializable [`ServiceStatsDoc`]: the always-on service counters
//! with their derived rates, the flight recorder's drop count, and one
//! row per tenant carrying windowed queue-wait/run quantiles and the SLO
//! verdict. This is what the in-protocol `stats` command returns and what
//! `coolopt-serve --stats-every` prints, so a live service is scrapeable
//! over the same wire that carries planning traffic.
//!
//! The snapshot is built entirely from atomics, per-tenant windowed
//! histograms and short per-tenant locks — safe concurrent with planning
//! traffic, re-registration and eviction; each tenant row is internally
//! consistent (counters may advance between rows, never inside one field).

use crate::core::{ServiceCore, StatsSnapshot};
use crate::slo::SloVerdict;
use crate::tenant::Tenant;
use coolopt_telemetry as telemetry;
use serde::Serialize;

/// Schema tag stamped on every [`ServiceStatsDoc`].
pub const SERVICE_STATS_SCHEMA: &str = "coolopt-service-stats-v1";

/// Windowed latency quantiles for one attribution stage, in microseconds.
/// All quantiles are `null` when the window recorded nothing (including
/// every build without the `telemetry` feature).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyDoc {
    /// Loads recorded in the window.
    pub count: u64,
    /// Mean latency (µs), `null` on an empty window.
    pub mean_us: Option<f64>,
    /// Median (µs).
    pub p50_us: Option<f64>,
    /// 99th percentile (µs).
    pub p99_us: Option<f64>,
    /// 99.9th percentile (µs).
    pub p999_us: Option<f64>,
}

impl LatencyDoc {
    /// Renders a histogram snapshot (seconds domain) as microsecond
    /// quantiles.
    pub fn from_snapshot(snapshot: &telemetry::HistogramSnapshot) -> Self {
        let us = |q: f64| snapshot.quantile(q).map(|s| s * 1e6);
        LatencyDoc {
            count: snapshot.count,
            mean_us: if snapshot.count == 0 {
                None
            } else {
                Some(snapshot.sum / snapshot.count as f64 * 1e6)
            },
            p50_us: us(0.50),
            p99_us: us(0.99),
            p999_us: us(0.999),
        }
    }
}

/// One tenant's row in the stats snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantStatsDoc {
    /// Registration key (`"{scenario}/{zone}"` or an explicit key).
    pub key: String,
    /// Stable tenant id (hex).
    pub id: String,
    /// Machines in the published engine (0 before the first publish).
    pub machines: usize,
    /// Engine kind serving this tenant (`"flat"`, `"hier"`, or `"none"`).
    pub engine: String,
    /// Engine publication count.
    pub generation: u64,
    /// Loads pending in the admission queue right now.
    pub queued: usize,
    /// Windowed join → batch-start latency.
    pub queue_wait: LatencyDoc,
    /// Windowed batch-start → publish latency.
    pub run: LatencyDoc,
    /// The SLO verdict, evaluated at snapshot time.
    pub slo: SloVerdict,
}

impl TenantStatsDoc {
    fn of(tenant: &Tenant, windows: usize) -> Self {
        let (machines, engine) = match tenant.snapshot() {
            Some(snapshot) => (snapshot.machine_count(), snapshot.engine_name().to_string()),
            None => (0, "none".to_string()),
        };
        TenantStatsDoc {
            key: tenant.key().to_string(),
            id: tenant.id().to_string(),
            machines,
            engine,
            generation: tenant.generation(),
            queued: tenant.queued(),
            queue_wait: LatencyDoc::from_snapshot(&tenant.queue_wait_windowed(windows)),
            run: LatencyDoc::from_snapshot(&tenant.run_windowed(windows)),
            slo: tenant.slo_verdict(),
        }
    }
}

/// The full service stats snapshot. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceStatsDoc {
    /// Always [`SERVICE_STATS_SCHEMA`].
    pub schema: String,
    /// Whether the metrics core is compiled in (windowed quantiles are
    /// structurally present but `null` without it).
    pub metrics_enabled: bool,
    /// Seconds since the service core was constructed.
    pub uptime_seconds: f64,
    /// Seconds per sliding window.
    pub window_seconds: f64,
    /// Windows retained per tenant.
    pub windows: usize,
    /// The always-on service counters.
    pub totals: StatsSnapshot,
    /// Mean loads per drained micro-batch (0 before the first batch).
    pub mean_batch_size: f64,
    /// Shed loads over all admission attempts (0 before the first).
    pub shed_rate: f64,
    /// Flight-recorder records lost to ring lap or contention.
    pub flight_dropped: u64,
    /// One row per distinct registered tenant, sorted by key.
    pub tenants: Vec<TenantStatsDoc>,
}

impl ServiceCore {
    /// Freezes the observability plane into a [`ServiceStatsDoc`] — the
    /// payload of the wire `stats` command and the `--stats-every` line.
    pub fn stats_doc(&self) -> ServiceStatsDoc {
        let totals = self.stats().snapshot();
        let windows = self.config().slo_windows;
        let mut tenants: Vec<TenantStatsDoc> = self
            .tenants()
            .iter()
            .map(|t| TenantStatsDoc::of(t, windows))
            .collect();
        tenants.sort_by(|a, b| a.key.cmp(&b.key));
        ServiceStatsDoc {
            schema: SERVICE_STATS_SCHEMA.to_string(),
            metrics_enabled: telemetry::metrics_enabled(),
            uptime_seconds: self.uptime_seconds(),
            window_seconds: self.config().slo_window_seconds,
            windows,
            mean_batch_size: totals.mean_batch_size(),
            shed_rate: totals.shed_rate(),
            totals,
            flight_dropped: telemetry::flight_dropped(),
            tenants,
        }
    }
}
