//! The service core: registry + coalescers + always-on statistics.

use crate::coalesce::CoalesceConfig;
use crate::registry::TenantRegistry;
use crate::tenant::{zone_parts, ContentMeta, Tenant, TenantId};
use crate::{PlanResult, ServiceError};
use coolopt_core::PowerTerms;
use coolopt_scenario::{Scenario, SloPolicy};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Log₂ batch-size buckets tracked by [`ServiceStats`]: bucket `i` counts
/// batches of `2^i ..= 2^(i+1) - 1` loads (the last bucket is open-ended).
pub const BATCH_SIZE_BUCKET_COUNT: usize = 12;

/// Service-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Per-tenant admission limits.
    pub coalesce: CoalesceConfig,
    /// Registry shard count (rounded up to a power of two).
    pub shards: usize,
    /// Default SLO for tenants whose scenario declares no override.
    pub slo: SloPolicy,
    /// Sliding-window length for latency/SLO accounting, in seconds
    /// (must be positive and finite).
    pub slo_window_seconds: f64,
    /// Windows retained per tenant (the fast burn view is the newest
    /// window, the slow view all of them; must be ≥ 1).
    pub slo_windows: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            coalesce: CoalesceConfig::default(),
            shards: 16,
            slo: SloPolicy::default(),
            slo_window_seconds: 10.0,
            slo_windows: 6,
        }
    }
}

/// Always-on service counters, independent of the `telemetry` feature so
/// the bench and the wire layer can report them in every build. Plain
/// relaxed atomics — each is a single uncontended-in-the-common-case add.
#[derive(Debug, Default)]
pub struct ServiceStats {
    plans: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    batch_size_buckets: [AtomicU64; BATCH_SIZE_BUCKET_COUNT],
}

impl ServiceStats {
    /// Records one drained micro-batch of `size` loads.
    pub(crate) fn record_batch(&self, size: usize) {
        self.plans.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        let bucket = (usize::BITS - 1 - size.max(1).leading_zeros()) as usize;
        self.batch_size_buckets[bucket.min(BATCH_SIZE_BUCKET_COUNT - 1)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `count` loads that joined an already-open batch.
    pub(crate) fn record_coalesced(&self, count: usize) {
        self.coalesced.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// Records `count` loads refused by backpressure.
    pub(crate) fn record_shed(&self, count: usize) {
        self.shed.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            plans: self.plans.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batch_size_log2: self
                .batch_size_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of [`ServiceStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// Loads planned (answered through a micro-batch).
    pub plans: u64,
    /// Micro-batches drained (one `query_batch` call each).
    pub batches: u64,
    /// Loads that joined an already-open batch (the coalescing win).
    pub coalesced: u64,
    /// Loads refused by backpressure.
    pub shed: u64,
    /// Batch-size histogram: entry `i` counts batches of
    /// `2^i ..= 2^(i+1) - 1` loads (last entry open-ended).
    pub batch_size_log2: Vec<u64>,
}

impl StatsSnapshot {
    /// Mean loads per drained micro-batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.plans as f64 / self.batches as f64
    }

    /// Shed loads as a fraction of all admission attempts.
    pub fn shed_rate(&self) -> f64 {
        let attempts = self.plans + self.shed;
        if attempts == 0 {
            return 0.0;
        }
        self.shed as f64 / attempts as f64
    }
}

/// The long-running multi-tenant query core. See the crate docs for the
/// architecture; in short: [`register_scenario`](ServiceCore::register_scenario)
/// (or [`register_parts`](ServiceCore::register_parts)) publishes engines,
/// [`submit`](ServiceCore::submit) answers query bursts through per-tenant
/// coalescers, and [`stats`](ServiceCore::stats) reports what happened.
#[derive(Debug)]
pub struct ServiceCore {
    config: ServiceConfig,
    registry: TenantRegistry,
    stats: Arc<ServiceStats>,
    /// Construction time, for the stats snapshot's uptime.
    started: Instant,
}

impl Default for ServiceCore {
    fn default() -> Self {
        ServiceCore::new(ServiceConfig::default())
    }
}

impl ServiceCore {
    /// A fresh, empty service core.
    pub fn new(config: ServiceConfig) -> Self {
        ServiceCore {
            config,
            registry: TenantRegistry::new(config.shards),
            stats: Arc::new(ServiceStats::default()),
            started: Instant::now(),
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Seconds since this core was constructed.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The live statistics counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The tenant registry (exposed for tests and the bench).
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Registers (or re-registers) a tenant under `key` with an engine
    /// built from explicit `(pairs, terms)`. Re-registering an existing
    /// key with a changed model atomically swaps its published engine;
    /// with an unchanged model it is a cheap fingerprint hit. The engine
    /// build runs outside every registry lock.
    pub fn register_parts(
        &self,
        key: &str,
        pairs: &[(f64, f64)],
        terms: PowerTerms,
    ) -> Result<Arc<Tenant>, ServiceError> {
        let id = TenantId::of(key);
        // Racing registrations of the same new key converge on one tenant;
        // both then publish into its cell (fingerprint-keyed, so the
        // second identical publish is a hit, not a rebuild).
        let tenant = self.registry.get_or_insert_with(id, || {
            Arc::new(Tenant::new(key, &self.config, Arc::clone(&self.stats)))
        });
        tenant.publish(pairs, terms)?;
        Ok(tenant)
    }

    /// Registers every zone of `scenario` as a tenant keyed
    /// `"{scenario.name}/{zone.name}"`, each also addressable by the
    /// content-hash alias `"{content_hash}/{zone.name}"`. Re-registering
    /// an edited scenario (same name, new content) swaps each zone's
    /// engine in place — in-flight batches finish on the old engine — and
    /// retires the stale content-hash aliases.
    pub fn register_scenario(&self, scenario: &Scenario) -> Result<Vec<Arc<Tenant>>, ServiceError> {
        let parts = zone_parts(scenario)?;
        let hash = scenario.content_hash();
        let mut tenants = Vec::with_capacity(parts.len());
        for part in &parts {
            let key = format!("{}/{}", scenario.name, part.zone);
            let tenant = self.register_parts(&key, &part.pairs, part.terms)?;
            // The scenario's policy block wins over the service default —
            // including on re-registration, so an edited SLO takes effect
            // (and a removed one reverts to the default).
            tenant.set_slo(scenario.policy.slo.unwrap_or(self.config.slo));
            let alias = TenantId::of(&format!("{}/{}", hash, part.zone));
            let previous = tenant.content_meta();
            if previous.alias != Some(alias) {
                if let Some(stale) = previous.alias {
                    self.registry.remove(stale);
                }
                self.registry.insert(alias, Arc::clone(&tenant));
                tenant.set_content_meta(ContentMeta {
                    hash: hash.clone(),
                    alias: Some(alias),
                });
            }
            tenants.push(tenant);
        }
        Ok(tenants)
    }

    /// The tenant addressed by `key` (a registration key or a
    /// content-hash alias), if registered.
    pub fn get(&self, key: &str) -> Option<Arc<Tenant>> {
        self.registry.get(TenantId::of(key))
    }

    /// The tenant addressed by `id`, if registered.
    pub fn get_id(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.registry.get(id)
    }

    /// Evicts the tenant addressed by `key` (primary key and content-hash
    /// alias both retired). In-flight queries finish against the evicted
    /// tenant's engine; new lookups miss.
    pub fn evict(&self, key: &str) -> Option<Arc<Tenant>> {
        let tenant = self.registry.remove(TenantId::of(key))?;
        let meta = tenant.content_meta();
        if let Some(alias) = meta.alias {
            self.registry.remove(alias);
        }
        // `key` may itself have been the alias; retire the primary too.
        self.registry.remove(TenantId::of(tenant.key()));
        Some(tenant)
    }

    /// Every distinct registered tenant.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.registry.tenants()
    }

    /// Submits a burst of loads for `tenant` and blocks for the answers —
    /// see [`Tenant::submit`].
    pub fn submit(&self, tenant: &str, loads: &[f64]) -> Result<Vec<PlanResult>, ServiceError> {
        let tenant = self
            .get(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        tenant.submit(loads)
    }

    /// Appends one sample of every service-level signal into `db` at
    /// `now_ms`: the global counters plus, per tenant, queue depth and SLO
    /// burn rates. This is the [`coolopt_telemetry::Collector`] source the
    /// serve binary registers; without the `telemetry` feature the store
    /// is a no-op and the call costs a few atomic loads.
    pub fn sample_into(&self, db: &coolopt_telemetry::Tsdb, now_ms: i64) {
        let snapshot = self.stats.snapshot();
        db.append("coolopt_service.plans", now_ms, snapshot.plans as f64);
        db.append("coolopt_service.batches", now_ms, snapshot.batches as f64);
        db.append(
            "coolopt_service.coalesced",
            now_ms,
            snapshot.coalesced as f64,
        );
        db.append("coolopt_service.shed", now_ms, snapshot.shed as f64);
        for tenant in self.tenants() {
            let verdict = tenant.slo_verdict();
            let prefix = format!("coolopt_service.tenant.{}", tenant.key());
            db.append(&format!("{prefix}.queued"), now_ms, tenant.queued() as f64);
            db.append(
                &format!("{prefix}.burn_fast"),
                now_ms,
                verdict.fast_burn.burn_rate,
            );
            db.append(
                &format!("{prefix}.burn_slow"),
                now_ms,
                verdict.slow_burn.burn_rate,
            );
        }
    }

    /// Single-load convenience wrapper over [`ServiceCore::submit`].
    pub fn submit_one(&self, tenant: &str, load: f64) -> Result<PlanResult, ServiceError> {
        let tenant = self
            .get(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        tenant.submit_one(load)
    }
}
