//! Sharded copy-on-write tenant registry.
//!
//! Lookups take one short per-shard lock just long enough to clone the
//! shard's `Arc<HashMap>` pointer — queries then resolve against that
//! immutable map with no lock held, so a slow registration or eviction on
//! one shard never stalls reads on another (and readers of the *same*
//! shard only wait for a pointer swap, never for an engine build: builds
//! happen outside every registry lock). Writes clone the map, mutate the
//! clone, and swap the pointer — the classic copy-on-write pattern, cheap
//! because registrations are rare next to queries.

use crate::tenant::{Tenant, TenantId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

type Shard = Mutex<Arc<HashMap<u64, Arc<Tenant>>>>;

/// The sharded map `tenant id → tenant`. Ids come from key strings (and,
/// for scenario tenants, content-hash aliases), so one tenant may be
/// reachable under more than one id.
#[derive(Debug)]
pub struct TenantRegistry {
    shards: Vec<Shard>,
    mask: u64,
}

impl TenantRegistry {
    /// A registry with `shards` shards (rounded up to a power of two, at
    /// least one).
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        TenantRegistry {
            shards: (0..count)
                .map(|_| Mutex::new(Arc::new(HashMap::new())))
                .collect(),
            mask: count as u64 - 1,
        }
    }

    fn shard(&self, id: TenantId) -> &Shard {
        // The id is an FNV-1a hash, so its low bits are already mixed.
        &self.shards[(id.raw() & self.mask) as usize]
    }

    /// The tenant registered under `id`, if any.
    pub fn get(&self, id: TenantId) -> Option<Arc<Tenant>> {
        let map = Arc::clone(&self.shard(id).lock().expect("shard lock poisoned"));
        map.get(&id.raw()).cloned()
    }

    /// Registers `tenant` under `id`, returning the tenant previously
    /// registered under that id (if any).
    pub fn insert(&self, id: TenantId, tenant: Arc<Tenant>) -> Option<Arc<Tenant>> {
        let mut guard = self.shard(id).lock().expect("shard lock poisoned");
        let mut map = HashMap::clone(&guard);
        let previous = map.insert(id.raw(), tenant);
        *guard = Arc::new(map);
        previous
    }

    /// The tenant registered under `id`, created with `make` (cheap — no
    /// engine build) and registered atomically if absent. Two racing
    /// registrations of a new id converge on one tenant.
    pub fn get_or_insert_with(
        &self,
        id: TenantId,
        make: impl FnOnce() -> Arc<Tenant>,
    ) -> Arc<Tenant> {
        let mut guard = self.shard(id).lock().expect("shard lock poisoned");
        if let Some(tenant) = guard.get(&id.raw()) {
            return Arc::clone(tenant);
        }
        let tenant = make();
        let mut map = HashMap::clone(&guard);
        map.insert(id.raw(), Arc::clone(&tenant));
        *guard = Arc::new(map);
        tenant
    }

    /// Removes the registration under `id`, returning the evicted tenant
    /// (which in-flight queries may still hold and finish against).
    pub fn remove(&self, id: TenantId) -> Option<Arc<Tenant>> {
        let mut guard = self.shard(id).lock().expect("shard lock poisoned");
        if !guard.contains_key(&id.raw()) {
            return None;
        }
        let mut map = HashMap::clone(&guard);
        let previous = map.remove(&id.raw());
        *guard = Arc::new(map);
        previous
    }

    /// Number of registrations (aliases counted — one scenario tenant
    /// registered under both its key and its content hash counts twice).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether the registry holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every distinct registered tenant (aliases deduplicated), in stable
    /// id order.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        let mut out: Vec<Arc<Tenant>> = Vec::new();
        for shard in &self.shards {
            let map = Arc::clone(&shard.lock().expect("shard lock poisoned"));
            out.extend(map.values().cloned());
        }
        out.sort_by_key(|t| t.id());
        out.dedup_by_key(|t| t.id());
        out
    }
}
