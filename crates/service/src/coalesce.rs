//! Micro-batch admission: coalescing concurrent queries into `query_batch`.
//!
//! The engine's batched query path amortizes its envelope walk over a whole
//! batch (~4× per query at n = 200, ~5× at n = 20), but concurrent clients
//! submit *single* loads. The [`Coalescer`] recovers the batch shape with a
//! flat-combining scheme that needs no dedicated threads and no timers:
//!
//! 1. A submission joins the tenant's *filling* batch (or opens one and
//!    becomes its **leader**).
//! 2. The leader queues on the tenant's **run token** — a mutex admitting
//!    one planning batch per tenant at a time. While it waits, its batch
//!    keeps filling with later submissions: the next batch accumulates
//!    exactly as long as the current one takes to plan, so batch size
//!    adapts to load with no tuning parameter (group commit).
//! 3. Token in hand, the leader closes the batch, drains it through one
//!    [`IndexSnapshot::query_batch`] call against the tenant's *currently
//!    published* snapshot, publishes the answers and wakes the followers;
//!    each submitter takes the answers for its own contiguous range.
//!
//! Backpressure is explicit: a submission that would push the tenant's
//! pending-load count past [`CoalesceConfig::max_queued`] is shed with
//! [`Shed`] (surfaced as [`ServiceError::Overloaded`]) instead of growing
//! any queue without bound. A batch that reaches
//! [`CoalesceConfig::max_batch`] loads stops accepting joins; the next
//! submission simply opens the successor batch.
//!
//! [`IndexSnapshot::query_batch`]: coolopt_core::IndexSnapshot::query_batch
//! [`ServiceError::Overloaded`]: crate::ServiceError::Overloaded

use crate::core::ServiceStats;
use coolopt_core::{Consolidation, SnapshotCell, SolveError};
use coolopt_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission limits for one tenant's coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Most loads one micro-batch carries; a full batch closes to joins and
    /// the next submission opens its successor.
    pub max_batch: usize,
    /// Most loads allowed pending (filling + awaiting the run token) per
    /// tenant before submissions are shed with an error.
    pub max_queued: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_batch: 512,
            max_queued: 8192,
        }
    }
}

/// Shed notice: the submission was refused by backpressure, not planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Pending loads at shed time (including this submission's).
    pub queued: usize,
    /// The configured bound that was hit.
    pub limit: usize,
}

/// Batch life cycle. `Filling` accepts joins; the leader moves it through
/// `Running` (loads drained into one `query_batch` call) to `Done`
/// (answers published, followers woken).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Filling,
    Running,
    Done,
}

/// Answers are taken (not cloned) by each submitter for its own disjoint
/// range, so `None` after `Done` means "infeasible", exactly as the
/// sequential query reports it.
pub type BatchOutcome = Result<Vec<Option<Consolidation>>, SolveError>;

/// Per-submission latency attribution, measured on the monotonic clock.
///
/// `queue_wait` is batch start minus this submission's join (how long its
/// loads sat filling / awaiting the run token); `run` is the shared
/// plan-and-publish time of the batch that served it. The split is what
/// the per-tenant windowed histograms and the `stats` scrape report —
/// queue-wait grows under contention, run grows with engine cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchMeta {
    /// Flight-recorder span id of the serving `service_batch` span
    /// (0 when telemetry is compiled out).
    pub span_id: u64,
    /// This submission's join → batch start.
    pub queue_wait: Duration,
    /// Batch start → answers published (shared by the whole batch).
    pub run: Duration,
}

#[derive(Debug)]
struct BatchInner {
    phase: Phase,
    loads: Vec<f64>,
    outcome: Option<BatchOutcome>,
    /// Set by the leader when the batch is drained (start of `Running`).
    started: Option<Instant>,
    /// Set by the leader when answers are published (`Done`).
    finished: Option<Instant>,
    /// The serving `service_batch` span id, for exemplar attribution.
    span_id: u64,
}

#[derive(Debug)]
struct Batch {
    inner: Mutex<BatchInner>,
    done: Condvar,
}

impl Batch {
    fn open(loads: &[f64]) -> Arc<Self> {
        Arc::new(Batch {
            inner: Mutex::new(BatchInner {
                phase: Phase::Filling,
                loads: loads.to_vec(),
                outcome: None,
                started: None,
                finished: None,
                span_id: 0,
            }),
            done: Condvar::new(),
        })
    }
}

/// Histogram bounds for the coalesced batch-size distribution (loads per
/// `query_batch` call).
pub const BATCH_SIZE_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// One tenant's admission/coalescing state. See the module docs for the
/// protocol.
#[derive(Debug)]
pub struct Coalescer {
    config: CoalesceConfig,
    /// The batch currently accepting joins, if any.
    filling: Mutex<Option<Arc<Batch>>>,
    /// Admits one planning batch per tenant at a time; the next batch fills
    /// while the current one runs.
    run_token: Mutex<()>,
    /// Loads pending (filling or awaiting the token) — the backpressure
    /// meter.
    queued: AtomicUsize,
    /// Process-wide always-on statistics, shared across tenants.
    stats: Arc<ServiceStats>,
    /// Numeric tenant handle for span attribution.
    tenant_attr: u64,
}

impl Coalescer {
    /// A fresh coalescer recording into `stats` and attributing its spans
    /// to `tenant_attr`.
    pub fn new(config: CoalesceConfig, stats: Arc<ServiceStats>, tenant_attr: u64) -> Self {
        Coalescer {
            config,
            filling: Mutex::new(None),
            run_token: Mutex::new(()),
            queued: AtomicUsize::new(0),
            stats,
            tenant_attr,
        }
    }

    /// The admission limits this coalescer enforces.
    pub fn config(&self) -> CoalesceConfig {
        self.config
    }

    /// Loads currently pending for this tenant.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    /// Submits a contiguous run of pre-validated loads (each finite and
    /// non-negative) and blocks until their answers are available, planning
    /// them through at most one shared `query_batch` call per micro-batch.
    /// Returns one answer per submitted load, in submission order,
    /// bit-identical to sequential [`IndexSnapshot::query_min_power`]
    /// against the snapshot published in `cell` when the batch ran, plus a
    /// [`BatchMeta`] attributing this submission's latency to queue wait
    /// vs batch run time.
    ///
    /// # Errors
    ///
    /// [`Shed`] when backpressure refuses the submission. The engine itself
    /// cannot fail on pre-validated loads, but an engine error would be
    /// reported (cloned) to every submitter of the batch via `Ok`'s `Err`
    /// arm — see [`BatchOutcome`](self) — so no submitter ever hangs.
    ///
    /// [`IndexSnapshot::query_min_power`]: coolopt_core::IndexSnapshot::query_min_power
    pub fn submit(
        &self,
        loads: &[f64],
        cell: &SnapshotCell,
    ) -> Result<(BatchOutcome, BatchMeta), Shed> {
        let joined = Instant::now();
        let count = loads.len();
        if count == 0 {
            return Ok((Ok(Vec::new()), BatchMeta::default()));
        }
        let queued = self.queued.fetch_add(count, Ordering::AcqRel) + count;
        if queued > self.config.max_queued {
            self.queued.fetch_sub(count, Ordering::AcqRel);
            self.stats.record_shed(count);
            telemetry::counter("coolopt_service_shed_total").add(count as u64);
            return Err(Shed {
                queued,
                limit: self.config.max_queued,
            });
        }

        let (batch, start, leader) = self.join(loads);
        if leader {
            self.lead(&batch, cell);
        }

        // Collect this submission's disjoint range.
        let mut inner = batch.inner.lock().expect("batch lock poisoned");
        while inner.phase != Phase::Done {
            inner = batch.done.wait(inner).expect("batch lock poisoned");
        }
        let result = match inner.outcome.as_mut().expect("done batch has an outcome") {
            Ok(answers) => Ok(answers[start..start + count]
                .iter_mut()
                .map(Option::take)
                .collect()),
            Err(e) => Err(e.clone()),
        };
        let meta = BatchMeta {
            span_id: inner.span_id,
            queue_wait: inner
                .started
                .map_or(Duration::ZERO, |s| s.saturating_duration_since(joined)),
            run: match (inner.started, inner.finished) {
                (Some(started), Some(finished)) => finished.saturating_duration_since(started),
                _ => Duration::ZERO,
            },
        };
        Ok((result, meta))
    }

    /// Joins the filling batch (follower) or opens a new one (leader).
    /// Returns the batch, the submission's start offset in it, and whether
    /// this submitter leads it.
    fn join(&self, loads: &[f64]) -> (Arc<Batch>, usize, bool) {
        let mut filling = self.filling.lock().expect("filling lock poisoned");
        if let Some(batch) = filling.as_ref() {
            let mut inner = batch.inner.lock().expect("batch lock poisoned");
            if inner.phase == Phase::Filling
                && inner.loads.len() + loads.len() <= self.config.max_batch
            {
                let start = inner.loads.len();
                inner.loads.extend_from_slice(loads);
                let batch = Arc::clone(batch);
                drop(inner);
                self.stats.record_coalesced(loads.len());
                return (batch, start, false);
            }
        }
        let batch = Batch::open(loads);
        *filling = Some(Arc::clone(&batch));
        (batch, 0, true)
    }

    /// The leader's path: wait for the run token (the batch keeps filling
    /// meanwhile), close and drain the batch, answer it with one
    /// `query_batch` call against the currently published snapshot, publish
    /// and wake the followers.
    fn lead(&self, batch: &Arc<Batch>, cell: &SnapshotCell) {
        let mut span = telemetry::span("service_batch").attr("tenant", self.tenant_attr);
        let token = self.run_token.lock().expect("run token poisoned");

        // Close: stop accepting joins (only if this batch is still the
        // filling one — a full batch was already superseded by a newer one).
        {
            let mut filling = self.filling.lock().expect("filling lock poisoned");
            if filling.as_ref().is_some_and(|b| Arc::ptr_eq(b, batch)) {
                *filling = None;
            }
        }

        // Drain.
        let loads = {
            let mut inner = batch.inner.lock().expect("batch lock poisoned");
            inner.phase = Phase::Running;
            inner.started = Some(Instant::now());
            inner.span_id = span.id();
            std::mem::take(&mut inner.loads)
        };
        let remaining = self.queued.fetch_sub(loads.len(), Ordering::AcqRel) - loads.len();
        span.set_attr("size", loads.len());
        self.stats.record_batch(loads.len());
        telemetry::counter("coolopt_service_batches_total").inc();
        telemetry::counter("coolopt_service_plans_total").add(loads.len() as u64);
        telemetry::histogram_with("coolopt_service_batch_size", BATCH_SIZE_BUCKETS)
            .observe(loads.len() as f64);
        telemetry::gauge("coolopt_service_queue_depth").set(remaining as f64);

        // Plan — outside every lock but the run token, against whatever
        // snapshot is published *now* (a concurrent re-registration swaps
        // engines between batches, never inside one).
        let outcome = {
            let _plan_span = telemetry::span("service_plan_batch").attr("loads", loads.len());
            match cell.load() {
                Some(snapshot) => snapshot.query_batch(&loads, None),
                None => Err(SolveError::Infeasible {
                    reason: "tenant has no published engine".to_string(),
                }),
            }
        };

        // Publish and wake.
        {
            let _reply_span = telemetry::span("service_reply");
            let mut inner = batch.inner.lock().expect("batch lock poisoned");
            inner.outcome = Some(outcome);
            inner.phase = Phase::Done;
            inner.finished = Some(Instant::now());
            batch.done.notify_all();
        }
        drop(token);
    }
}
