//! Line-delimited JSON wire protocol for `coolopt-serve`.
//!
//! One request per line, one response line per request:
//!
//! ```json
//! {"tenant": "testbed_rack20/rack", "load": 12.0}
//! {"tenant": "testbed_rack20/rack", "loads": [1.0, 2.5, 14.0]}
//! ```
//!
//! A tenant may be addressed by its registration key
//! (`"{scenario name}/{zone name}"`) or by its content-hash alias
//! (`"{content_hash}/{zone name}"`). Responses echo the tenant and carry
//! one [`PlanReply`] per requested load; service-level failures (unknown
//! tenant, shed by backpressure, malformed request) set `ok = false` with
//! a human-readable `error` and no results.

use crate::core::ServiceCore;
use crate::{PlanResult, ServiceError};
use coolopt_core::Consolidation;
use serde::{Deserialize, Serialize};

/// One wire request: a single `load`, a burst of `loads`, or both
/// (the single load is planned after the burst).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Tenant key or content-hash alias.
    pub tenant: String,
    /// A single load to plan.
    #[serde(default)]
    pub load: Option<f64>,
    /// A burst of loads to plan as one submission.
    #[serde(default)]
    pub loads: Option<Vec<f64>>,
}

/// The answer for one requested load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReply {
    /// The load as requested.
    pub load: f64,
    /// Whether any machine subset can carry the load (`plan` is present
    /// exactly when this is `true`).
    pub feasible: bool,
    /// The minimum-power consolidation, when feasible.
    #[serde(default)]
    pub plan: Option<Consolidation>,
    /// Engine-level rejection for this load (e.g. negative or non-finite),
    /// mirroring the sequential error text.
    #[serde(default)]
    pub error: Option<String>,
}

impl PlanReply {
    fn from_result(load: f64, result: PlanResult) -> Self {
        match result {
            Ok(Some(plan)) => PlanReply {
                load,
                feasible: true,
                plan: Some(plan),
                error: None,
            },
            Ok(None) => PlanReply {
                load,
                feasible: false,
                plan: None,
                error: None,
            },
            Err(e) => PlanReply {
                load,
                feasible: false,
                plan: None,
                error: Some(e.to_string()),
            },
        }
    }
}

/// One wire response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the requested tenant (empty when the request line did not
    /// even parse).
    pub tenant: String,
    /// Whether the submission was served. Per-load failures (an
    /// infeasible or rejected load) still count as served; `false` means
    /// the service refused the submission as a whole.
    pub ok: bool,
    /// Service-level failure, when `ok` is `false`.
    #[serde(default)]
    pub error: Option<String>,
    /// One reply per requested load, in request order.
    #[serde(default)]
    pub results: Vec<PlanReply>,
}

impl Response {
    fn refused(tenant: &str, error: &ServiceError) -> Self {
        Response {
            tenant: tenant.to_string(),
            ok: false,
            error: Some(error.to_string()),
            results: Vec::new(),
        }
    }
}

/// Serves one request line against `core`, returning the response to
/// write back. Never panics on malformed input.
pub fn handle_line(core: &ServiceCore, line: &str) -> Response {
    let request: Request = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(e) => {
            return Response {
                tenant: String::new(),
                ok: false,
                error: Some(format!("malformed request: {e}")),
                results: Vec::new(),
            }
        }
    };
    let mut loads = request.loads.unwrap_or_default();
    if let Some(load) = request.load {
        loads.push(load);
    }
    if loads.is_empty() {
        return Response {
            tenant: request.tenant,
            ok: false,
            error: Some("request carries neither `load` nor `loads`".to_string()),
            results: Vec::new(),
        };
    }
    match core.submit(&request.tenant, &loads) {
        Ok(results) => Response {
            tenant: request.tenant,
            ok: true,
            error: None,
            results: loads
                .iter()
                .zip(results)
                .map(|(&load, result)| PlanReply::from_result(load, result))
                .collect(),
        },
        Err(e) => Response::refused(&request.tenant, &e),
    }
}
