//! Line-delimited JSON wire protocol for `coolopt-serve`.
//!
//! One request per line, one response line per request:
//!
//! ```json
//! {"tenant": "testbed_rack20/rack", "load": 12.0}
//! {"tenant": "testbed_rack20/rack", "loads": [1.0, 2.5, 14.0]}
//! {"cmd": "stats"}
//! {"cmd": "metrics"}
//! ```
//!
//! A tenant may be addressed by its registration key
//! (`"{scenario name}/{zone name}"`) or by its content-hash alias
//! (`"{content_hash}/{zone name}"`). Responses echo the tenant and carry
//! one [`PlanReply`] per requested load; service-level failures (unknown
//! tenant, shed by backpressure, malformed request) set `ok = false` with
//! a human-readable `error` and no results.
//!
//! The observability plane is in-protocol: `{"cmd": "stats"}` answers one
//! [`ServiceStatsDoc`] line (schema `coolopt-service-stats-v1` — per-tenant
//! windowed quantiles, SLO verdicts, burn rates) and `{"cmd": "metrics"}`
//! answers a [`MetricsReply`] wrapping the Prometheus text exposition.
//! Both are safe concurrent with planning traffic, re-registration and
//! eviction — no scrape ever blocks a batch.

use crate::core::ServiceCore;
use crate::stats::ServiceStatsDoc;
use crate::{PlanResult, ServiceError};
use coolopt_core::Consolidation;
use coolopt_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// One wire request: a planning submission (a single `load`, a burst of
/// `loads`, or both — the single load is planned after the burst), or an
/// observability command (`"cmd": "stats"` / `"cmd": "metrics"`, which
/// need no tenant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Command selector: absent or `"plan"` plans loads; `"stats"` and
    /// `"metrics"` scrape the observability plane.
    #[serde(default)]
    pub cmd: Option<String>,
    /// Tenant key or content-hash alias (planning requests only).
    #[serde(default)]
    pub tenant: String,
    /// A single load to plan.
    #[serde(default)]
    pub load: Option<f64>,
    /// A burst of loads to plan as one submission.
    #[serde(default)]
    pub loads: Option<Vec<f64>>,
}

/// The answer for one requested load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReply {
    /// The load as requested.
    pub load: f64,
    /// Whether any machine subset can carry the load (`plan` is present
    /// exactly when this is `true`).
    pub feasible: bool,
    /// The minimum-power consolidation, when feasible.
    #[serde(default)]
    pub plan: Option<Consolidation>,
    /// Engine-level rejection for this load (e.g. negative or non-finite),
    /// mirroring the sequential error text.
    #[serde(default)]
    pub error: Option<String>,
}

impl PlanReply {
    fn from_result(load: f64, result: PlanResult) -> Self {
        match result {
            Ok(Some(plan)) => PlanReply {
                load,
                feasible: true,
                plan: Some(plan),
                error: None,
            },
            Ok(None) => PlanReply {
                load,
                feasible: false,
                plan: None,
                error: None,
            },
            Err(e) => PlanReply {
                load,
                feasible: false,
                plan: None,
                error: Some(e.to_string()),
            },
        }
    }
}

/// One wire response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the requested tenant (empty when the request line did not
    /// even parse).
    pub tenant: String,
    /// Whether the submission was served. Per-load failures (an
    /// infeasible or rejected load) still count as served; `false` means
    /// the service refused the submission as a whole.
    pub ok: bool,
    /// Service-level failure, when `ok` is `false`.
    #[serde(default)]
    pub error: Option<String>,
    /// One reply per requested load, in request order.
    #[serde(default)]
    pub results: Vec<PlanReply>,
}

impl Response {
    fn refused(tenant: &str, error: &ServiceError) -> Self {
        Response {
            tenant: tenant.to_string(),
            ok: false,
            error: Some(error.to_string()),
            results: Vec::new(),
        }
    }
}

/// Schema tag stamped on every [`MetricsReply`].
pub const METRICS_REPLY_SCHEMA: &str = "coolopt-service-metrics-v1";

/// The `{"cmd": "metrics"}` answer: Prometheus text exposition wrapped in
/// one JSON line (empty exposition without the `telemetry` feature).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Always [`METRICS_REPLY_SCHEMA`].
    pub schema: String,
    /// Whether the metrics core is compiled in.
    pub metrics_enabled: bool,
    /// Flight-recorder records lost to ring lap or contention.
    pub flight_dropped: u64,
    /// Prometheus text exposition of the full metrics registry.
    pub prometheus: String,
}

/// One wire reply of any kind. [`Reply::encode`] renders the line to
/// write back.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A planning response (also carries request-level errors).
    Plan(Response),
    /// A `stats` snapshot.
    Stats(ServiceStatsDoc),
    /// A `metrics` exposition.
    Metrics(MetricsReply),
}

impl Reply {
    /// Renders the reply as its one-line JSON wire form.
    pub fn encode(&self) -> String {
        match self {
            Reply::Plan(response) => serde_json::to_string(response),
            Reply::Stats(doc) => serde_json::to_string(doc),
            Reply::Metrics(reply) => serde_json::to_string(reply),
        }
        .expect("wire replies always encode")
    }
}

/// Serves one request line against `core`, returning the typed reply.
/// Never panics on malformed input.
pub fn handle_request(core: &ServiceCore, line: &str) -> Reply {
    let request: Request = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(e) => {
            return Reply::Plan(Response {
                tenant: String::new(),
                ok: false,
                error: Some(format!("malformed request: {e}")),
                results: Vec::new(),
            })
        }
    };
    match request.cmd.as_deref() {
        None | Some("plan") => Reply::Plan(handle_plan(core, request)),
        Some("stats") => Reply::Stats(core.stats_doc()),
        Some("metrics") => {
            // Surface the drop count in the exposition itself too, so a
            // plain Prometheus scrape sees recorder health.
            let dropped = telemetry::flight_dropped();
            telemetry::gauge("coolopt_flight_records_dropped").set(dropped as f64);
            Reply::Metrics(MetricsReply {
                schema: METRICS_REPLY_SCHEMA.to_string(),
                metrics_enabled: telemetry::metrics_enabled(),
                flight_dropped: dropped,
                prometheus: telemetry::render_prometheus(),
            })
        }
        Some(other) => Reply::Plan(Response {
            tenant: request.tenant,
            ok: false,
            error: Some(format!("unknown command {other:?}")),
            results: Vec::new(),
        }),
    }
}

/// Serves one request line against `core`, returning the reply line to
/// write back (the string form of [`handle_request`]).
pub fn handle_line(core: &ServiceCore, line: &str) -> String {
    handle_request(core, line).encode()
}

fn handle_plan(core: &ServiceCore, request: Request) -> Response {
    let mut loads = request.loads.unwrap_or_default();
    if let Some(load) = request.load {
        loads.push(load);
    }
    if loads.is_empty() {
        return Response {
            tenant: request.tenant,
            ok: false,
            error: Some("request carries neither `load` nor `loads`".to_string()),
            results: Vec::new(),
        };
    }
    match core.submit(&request.tenant, &loads) {
        Ok(results) => Response {
            tenant: request.tenant,
            ok: true,
            error: None,
            results: loads
                .iter()
                .zip(results)
                .map(|(&load, result)| PlanReply::from_result(load, result))
                .collect(),
        },
        Err(e) => Response::refused(&request.tenant, &e),
    }
}
