//! Line-delimited JSON wire protocol for `coolopt-serve`.
//!
//! One request per line, one response line per request:
//!
//! ```json
//! {"tenant": "testbed_rack20/rack", "load": 12.0}
//! {"tenant": "testbed_rack20/rack", "loads": [1.0, 2.5, 14.0]}
//! {"cmd": "stats"}
//! {"cmd": "metrics"}
//! ```
//!
//! A tenant may be addressed by its registration key
//! (`"{scenario name}/{zone name}"`) or by its content-hash alias
//! (`"{content_hash}/{zone name}"`). Responses echo the tenant and carry
//! one [`PlanReply`] per requested load; service-level failures (unknown
//! tenant, shed by backpressure, malformed request) set `ok = false` with
//! a human-readable `error` and no results.
//!
//! The observability plane is in-protocol: `{"cmd": "stats"}` answers one
//! [`ServiceStatsDoc`] line (schema `coolopt-service-stats-v1` — per-tenant
//! windowed quantiles, SLO verdicts, burn rates), `{"cmd": "metrics"}`
//! answers a [`MetricsReply`] wrapping the Prometheus text exposition,
//! `{"cmd": "query"}` answers a [`QueryReply`] of compressed metric
//! *history* from the embedded time-series store (series selection by
//! exact name or `prefix*`, optional `start_ms`/`end_ms` window, optional
//! `step_ms` + `agg` alignment), and `{"cmd": "trace"}` ships the newest
//! flight-recorder spans as an embedded Chrome-trace fragment (bounded by
//! `limit`). All are safe concurrent with planning traffic,
//! re-registration and eviction — no scrape ever blocks a batch.

use crate::core::ServiceCore;
use crate::stats::ServiceStatsDoc;
use crate::{PlanResult, ServiceError};
use coolopt_core::Consolidation;
use coolopt_telemetry as telemetry;
use coolopt_telemetry::{Agg, RangeQuery};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One wire request: a planning submission (a single `load`, a burst of
/// `loads`, or both — the single load is planned after the burst), or an
/// observability command (`"cmd": "stats"` / `"cmd": "metrics"` /
/// `"cmd": "query"` / `"cmd": "trace"`, which need no tenant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Command selector: absent or `"plan"` plans loads; `"stats"`,
    /// `"metrics"`, `"query"` and `"trace"` scrape the observability
    /// plane.
    #[serde(default)]
    pub cmd: Option<String>,
    /// Tenant key or content-hash alias (planning requests only).
    #[serde(default)]
    pub tenant: String,
    /// A single load to plan.
    #[serde(default)]
    pub load: Option<f64>,
    /// A burst of loads to plan as one submission.
    #[serde(default)]
    pub loads: Option<Vec<f64>>,
    /// `query` only: series selector — exact name, `prefix*`, or absent /
    /// `"*"` for every series.
    #[serde(default)]
    pub series: Option<String>,
    /// `query` only: oldest timestamp to include (ms; unbounded when
    /// absent).
    #[serde(default)]
    pub start_ms: Option<i64>,
    /// `query` only: newest timestamp to include (ms; unbounded when
    /// absent).
    #[serde(default)]
    pub end_ms: Option<i64>,
    /// `query` only: step alignment in ms (absent or `<= 0` returns raw
    /// points).
    #[serde(default)]
    pub step_ms: Option<i64>,
    /// `query` only: bucket aggregator — `"min"`, `"max"`, `"mean"`
    /// (default) or `"last"`.
    #[serde(default)]
    pub agg: Option<String>,
    /// `query`: newest points kept per series (default 2048).
    /// `trace`: newest records shipped (default 256). Clamped to 4096.
    #[serde(default)]
    pub limit: Option<usize>,
}

/// The answer for one requested load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReply {
    /// The load as requested.
    pub load: f64,
    /// Whether any machine subset can carry the load (`plan` is present
    /// exactly when this is `true`).
    pub feasible: bool,
    /// The minimum-power consolidation, when feasible.
    #[serde(default)]
    pub plan: Option<Consolidation>,
    /// Engine-level rejection for this load (e.g. negative or non-finite),
    /// mirroring the sequential error text.
    #[serde(default)]
    pub error: Option<String>,
}

impl PlanReply {
    fn from_result(load: f64, result: PlanResult) -> Self {
        match result {
            Ok(Some(plan)) => PlanReply {
                load,
                feasible: true,
                plan: Some(plan),
                error: None,
            },
            Ok(None) => PlanReply {
                load,
                feasible: false,
                plan: None,
                error: None,
            },
            Err(e) => PlanReply {
                load,
                feasible: false,
                plan: None,
                error: Some(e.to_string()),
            },
        }
    }
}

/// One wire response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the requested tenant (empty when the request line did not
    /// even parse).
    pub tenant: String,
    /// Whether the submission was served. Per-load failures (an
    /// infeasible or rejected load) still count as served; `false` means
    /// the service refused the submission as a whole.
    pub ok: bool,
    /// Service-level failure, when `ok` is `false`.
    #[serde(default)]
    pub error: Option<String>,
    /// One reply per requested load, in request order.
    #[serde(default)]
    pub results: Vec<PlanReply>,
}

impl Response {
    fn refused(tenant: &str, error: &ServiceError) -> Self {
        Response {
            tenant: tenant.to_string(),
            ok: false,
            error: Some(error.to_string()),
            results: Vec::new(),
        }
    }
}

/// Schema tag stamped on every [`MetricsReply`].
pub const METRICS_REPLY_SCHEMA: &str = "coolopt-service-metrics-v1";

/// The `{"cmd": "metrics"}` answer: Prometheus text exposition wrapped in
/// one JSON line (empty exposition without the `telemetry` feature).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Always [`METRICS_REPLY_SCHEMA`].
    pub schema: String,
    /// Whether the metrics core is compiled in.
    pub metrics_enabled: bool,
    /// Flight-recorder records lost to ring lap or contention.
    pub flight_dropped: u64,
    /// Prometheus text exposition of the full metrics registry.
    pub prometheus: String,
}

/// Schema tag stamped on every [`QueryReply`].
pub const QUERY_REPLY_SCHEMA: &str = "coolopt-service-query-v1";

/// Schema tag stamped on every [`TraceReply`].
pub const TRACE_REPLY_SCHEMA: &str = "coolopt-service-trace-v1";

/// One series in a [`QueryReply`]: the answered points plus the storage
/// accounting behind them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesDoc {
    /// The series name.
    pub name: String,
    /// `[t_ms, value]` samples (newest `limit` kept; non-finite values
    /// are dropped — the vendored JSON writer would render them `null`).
    pub points: Vec<(i64, f64)>,
    /// Samples ever appended (evicted ones included).
    pub appended: u64,
    /// Samples currently decodable across both retention tiers.
    pub retained_points: u64,
    /// Compressed bytes held across both tiers.
    pub stored_bytes: u64,
    /// Uncompressed-pair bytes over compressed bytes for this series.
    pub compression_ratio: f64,
}

/// The `{"cmd": "query"}` answer: compressed metric history out of the
/// embedded time-series store (empty without the `telemetry` feature).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryReply {
    /// Always [`QUERY_REPLY_SCHEMA`].
    pub schema: String,
    /// Whether the storage core is compiled in.
    pub tsdb_enabled: bool,
    /// Echo of the effective series selector.
    pub pattern: String,
    /// Echo of the effective aggregator spelling.
    pub agg: String,
    /// Echo of the effective step (ms; `0` means raw points).
    pub step_ms: i64,
    /// Matched series, in name order.
    pub series: Vec<SeriesDoc>,
    /// Distinct series in the whole store (not just the matches).
    pub total_series: u64,
    /// Decodable samples in the whole store.
    pub total_points: u64,
    /// Compressed bytes held by the whole store.
    pub total_stored_bytes: u64,
    /// What those samples would cost as plain `(i64, f64)` pairs.
    pub total_raw_bytes: u64,
    /// `total_raw_bytes / total_stored_bytes` (zero when empty).
    pub compression_ratio: f64,
}

/// The `{"cmd": "trace"}` answer: the newest flight-recorder records as an
/// embedded Chrome-trace fragment. Encoded by hand — `chrome_json` is
/// spliced into the reply line verbatim, so `reply.chrome_json` can be cut
/// out and loaded straight into `chrome://tracing` / Perfetto.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReply {
    /// Always [`TRACE_REPLY_SCHEMA`].
    pub schema: String,
    /// Whether the tracing core is compiled in.
    pub trace_enabled: bool,
    /// Records in the full snapshot before the `limit` cut.
    pub total_records: u64,
    /// Records shipped in `chrome_json`.
    pub returned: u64,
    /// Records lost to ring lap or contention since recorder start.
    pub dropped: u64,
    /// Chrome `traceEvents` JSON object for the shipped records.
    pub chrome_json: String,
}

/// One wire reply of any kind. [`Reply::encode`] renders the line to
/// write back.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A planning response (also carries request-level errors).
    Plan(Response),
    /// A `stats` snapshot.
    Stats(ServiceStatsDoc),
    /// A `metrics` exposition.
    Metrics(MetricsReply),
    /// A `query` range-query answer.
    Query(QueryReply),
    /// A `trace` flight-recorder scrape.
    Trace(TraceReply),
}

impl Reply {
    /// Renders the reply as its one-line JSON wire form.
    pub fn encode(&self) -> String {
        match self {
            Reply::Plan(response) => serde_json::to_string(response),
            Reply::Stats(doc) => serde_json::to_string(doc),
            Reply::Metrics(reply) => serde_json::to_string(reply),
            Reply::Query(reply) => serde_json::to_string(reply),
            // The vendored serde_json has no raw-value passthrough, so the
            // trace line is assembled by hand to embed `chrome_json`
            // unescaped.
            Reply::Trace(reply) => {
                let mut out = String::with_capacity(128 + reply.chrome_json.len());
                let _ = write!(
                    out,
                    "{{\"schema\":{:?},\"trace_enabled\":{},\"total_records\":{},\
                     \"returned\":{},\"dropped\":{},\"chrome_json\":",
                    reply.schema,
                    reply.trace_enabled,
                    reply.total_records,
                    reply.returned,
                    reply.dropped,
                );
                out.push_str(&reply.chrome_json);
                out.push('}');
                return out;
            }
        }
        .expect("wire replies always encode")
    }
}

/// Serves one request line against `core`, returning the typed reply.
/// Never panics on malformed input.
pub fn handle_request(core: &ServiceCore, line: &str) -> Reply {
    let request: Request = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(e) => {
            return Reply::Plan(Response {
                tenant: String::new(),
                ok: false,
                error: Some(format!("malformed request: {e}")),
                results: Vec::new(),
            })
        }
    };
    match request.cmd.as_deref() {
        None | Some("plan") => Reply::Plan(handle_plan(core, request)),
        Some("stats") => Reply::Stats(core.stats_doc()),
        Some("metrics") => {
            // Surface the drop count in the exposition itself too, so a
            // plain Prometheus scrape sees recorder health.
            let dropped = telemetry::flight_dropped();
            telemetry::gauge("coolopt_flight_records_dropped").set(dropped as f64);
            Reply::Metrics(MetricsReply {
                schema: METRICS_REPLY_SCHEMA.to_string(),
                metrics_enabled: telemetry::metrics_enabled(),
                flight_dropped: dropped,
                prometheus: telemetry::render_prometheus(),
            })
        }
        Some("query") => match handle_query(&request) {
            Ok(reply) => Reply::Query(reply),
            Err(error) => Reply::Plan(Response {
                tenant: request.tenant,
                ok: false,
                error: Some(error),
                results: Vec::new(),
            }),
        },
        Some("trace") => Reply::Trace(handle_trace(&request)),
        Some(other) => Reply::Plan(Response {
            tenant: request.tenant,
            ok: false,
            error: Some(format!("unknown command {other:?}")),
            results: Vec::new(),
        }),
    }
}

/// Points kept per series when a `query` names no `limit`.
const DEFAULT_QUERY_LIMIT: usize = 2048;

/// Records shipped when a `trace` names no `limit`.
const DEFAULT_TRACE_LIMIT: usize = 256;

/// Hard ceiling on `limit` — one reply stays one bounded line.
const MAX_LIMIT: usize = 4096;

fn handle_query(request: &Request) -> Result<QueryReply, String> {
    let agg = match request.agg.as_deref() {
        None | Some("") => Agg::default(),
        Some(s) => Agg::parse(s)
            .ok_or_else(|| format!("unknown agg {s:?} (expected min, max, mean or last)"))?,
    };
    let range = RangeQuery {
        start_ms: request.start_ms,
        end_ms: request.end_ms,
        step_ms: request.step_ms.unwrap_or(0).max(0),
        agg,
    };
    let limit = request
        .limit
        .unwrap_or(DEFAULT_QUERY_LIMIT)
        .clamp(1, MAX_LIMIT);
    let pattern = request.series.clone().unwrap_or_else(|| "*".to_string());
    let db = telemetry::tsdb();
    let series = db
        .query_matching(&pattern, &range)
        .into_iter()
        .map(|result| {
            let mut points: Vec<(i64, f64)> = result
                .points
                .into_iter()
                .filter(|&(_, v)| v.is_finite())
                .collect();
            let skip = points.len().saturating_sub(limit);
            points.drain(..skip);
            SeriesDoc {
                name: result.name,
                points,
                appended: result.stats.appended,
                retained_points: result.stats.retained_points + result.stats.down_points,
                stored_bytes: result.stats.stored_bytes + result.stats.down_bytes,
                compression_ratio: result.stats.compression_ratio(),
            }
        })
        .collect();
    let totals = db.stats();
    Ok(QueryReply {
        schema: QUERY_REPLY_SCHEMA.to_string(),
        tsdb_enabled: telemetry::metrics_enabled(),
        pattern,
        agg: agg.name().to_string(),
        step_ms: range.step_ms,
        series,
        total_series: totals.series,
        total_points: totals.points,
        total_stored_bytes: totals.stored_bytes,
        total_raw_bytes: totals.raw_bytes,
        compression_ratio: totals.compression_ratio(),
    })
}

fn handle_trace(request: &Request) -> TraceReply {
    let limit = request
        .limit
        .unwrap_or(DEFAULT_TRACE_LIMIT)
        .clamp(1, MAX_LIMIT);
    let snapshot = telemetry::flight_snapshot();
    let total_records = snapshot.records.len() as u64;
    let tail = snapshot.tail(limit);
    TraceReply {
        schema: TRACE_REPLY_SCHEMA.to_string(),
        trace_enabled: telemetry::metrics_enabled(),
        total_records,
        returned: tail.records.len() as u64,
        dropped: tail.dropped,
        chrome_json: tail.to_chrome_json(),
    }
}

/// Serves one request line against `core`, returning the reply line to
/// write back (the string form of [`handle_request`]).
pub fn handle_line(core: &ServiceCore, line: &str) -> String {
    handle_request(core, line).encode()
}

fn handle_plan(core: &ServiceCore, request: Request) -> Response {
    let mut loads = request.loads.unwrap_or_default();
    if let Some(load) = request.load {
        loads.push(load);
    }
    if loads.is_empty() {
        return Response {
            tenant: request.tenant,
            ok: false,
            error: Some("request carries neither `load` nor `loads`".to_string()),
            results: Vec::new(),
        };
    }
    match core.submit(&request.tenant, &loads) {
        Ok(results) => Response {
            tenant: request.tenant,
            ok: true,
            error: None,
            results: loads
                .iter()
                .zip(results)
                .map(|(&load, result)| PlanReply::from_result(load, result))
                .collect(),
        },
        Err(e) => Response::refused(&request.tenant, &e),
    }
}
