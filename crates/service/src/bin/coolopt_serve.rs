//! `coolopt-serve` — the planner-as-a-service wire layer.
//!
//! Registers scenario files as tenants, then answers line-delimited JSON
//! plan queries over stdin (default) or a TCP listener:
//!
//! ```text
//! echo '{"tenant":"testbed_rack20/rack","load":12.0}' \
//!   | coolopt-serve --stdin --scenario scenarios/testbed_rack20.json
//!
//! coolopt-serve --listen 127.0.0.1:7070 --scenario scenarios/two_zone_hetero.json
//! ```
//!
//! One response line per request line (see `coolopt_service::proto`); the
//! observability plane is in-protocol — `{"cmd":"stats"}` answers a
//! `coolopt-service-stats-v1` snapshot and `{"cmd":"metrics"}` the
//! Prometheus exposition, safe concurrent with planning traffic. With
//! `--stats-every N` the same stats snapshot is also printed to stderr as
//! one JSON line every N seconds; on stdin EOF a final snapshot is
//! printed.

use coolopt_scenario::Scenario;
use coolopt_service::{proto, ServiceCore};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: coolopt-serve [--stdin | --listen ADDR] [--scenario PATH]... [--stats-every SECS]\n\
         \n\
         --stdin             serve line-delimited JSON requests from stdin (default)\n\
         --listen ADDR       serve line-delimited JSON over TCP, one connection per thread\n\
         --scenario PATH     register a scenario file at boot (repeatable)\n\
         --stats-every SECS  print a one-line JSON stats snapshot to stderr every SECS seconds\n\
         \n\
         each zone of a scenario becomes a tenant keyed \"{{scenario}}/{{zone}}\",\n\
         also addressable as \"{{content_hash}}/{{zone}}\""
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut stats_every: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdin" => listen = None,
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--scenario" => scenarios.push(args.next().unwrap_or_else(|| usage())),
            "--stats-every" => {
                let secs = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage());
                stats_every = Some(secs);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    let core = Arc::new(ServiceCore::default());
    for path in &scenarios {
        let scenario = match Scenario::load(path) {
            Ok(scenario) => scenario,
            Err(e) => {
                eprintln!("coolopt-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match core.register_scenario(&scenario) {
            Ok(tenants) => {
                for tenant in tenants {
                    eprintln!(
                        "coolopt-serve: registered {:?} ({} machines, {} engine)",
                        tenant.key(),
                        tenant.snapshot().map_or(0, |s| s.machine_count()),
                        tenant.snapshot().map_or("none", |s| s.engine_name()),
                    );
                }
            }
            Err(e) => {
                eprintln!("coolopt-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(secs) = stats_every {
        let core = Arc::clone(&core);
        // Detached reporter: one stats line per period for the life of the
        // process (the snapshot never blocks planning traffic).
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs_f64(secs));
            let stats =
                serde_json::to_string(&core.stats_doc()).expect("stats snapshots always encode");
            eprintln!("coolopt-serve: stats {stats}");
        });
    }

    match listen {
        None => serve_stdin(&core),
        Some(addr) => serve_tcp(&core, &addr),
    }
}

fn serve_stdin(core: &Arc<ServiceCore>) -> ExitCode {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("coolopt-serve: stdin: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let encoded = proto::handle_line(core, &line);
        if writeln!(stdout, "{encoded}").is_err() {
            break;
        }
    }
    let stats = serde_json::to_string(&core.stats_doc()).expect("stats snapshots always encode");
    eprintln!("coolopt-serve: stats {stats}");
    ExitCode::SUCCESS
}

fn serve_tcp(core: &Arc<ServiceCore>, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("coolopt-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("coolopt-serve: listening on {addr}");
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("coolopt-serve: accept: {e}");
                continue;
            }
        };
        let core = Arc::clone(core);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string());
            let mut writer = match stream.try_clone() {
                Ok(writer) => writer,
                Err(e) => {
                    eprintln!("coolopt-serve: {peer}: {e}");
                    return;
                }
            };
            for line in BufReader::new(stream).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let encoded = proto::handle_line(&core, &line);
                if writeln!(writer, "{encoded}").is_err() {
                    break;
                }
            }
        });
    }
    ExitCode::SUCCESS
}
