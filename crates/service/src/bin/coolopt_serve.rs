//! `coolopt-serve` — the planner-as-a-service wire layer.
//!
//! Registers scenario files as tenants, then answers line-delimited JSON
//! plan queries over stdin (default) or a TCP listener:
//!
//! ```text
//! echo '{"tenant":"testbed_rack20/rack","load":12.0}' \
//!   | coolopt-serve --stdin --scenario scenarios/testbed_rack20.json
//!
//! coolopt-serve --listen 127.0.0.1:7070 --scenario scenarios/two_zone_hetero.json
//! ```
//!
//! One response line per request line (see `coolopt_service::proto`); the
//! observability plane is in-protocol — `{"cmd":"stats"}` answers a
//! `coolopt-service-stats-v1` snapshot, `{"cmd":"metrics"}` the Prometheus
//! exposition, `{"cmd":"query"}` compressed metric history out of the
//! embedded time-series store, and `{"cmd":"trace"}` the newest
//! flight-recorder spans — all safe concurrent with planning traffic.
//!
//! A background collector (period `--collect-every`, default 250 ms)
//! samples every registered counter/gauge/histogram plus the service-level
//! signals (plans, batches, shed, per-tenant queue depth and SLO burn
//! rates) into the store, so `query` answers history, not just the
//! present. `--dashboard PATH` renders the whole store as one
//! self-contained HTML file (inline SVG, no scripts), rewritten
//! periodically and on clean shutdown. With `--stats-every N` a stats
//! snapshot is also printed to stderr as one JSON line every N seconds; on
//! stdin EOF one final snapshot is always printed.

use coolopt_scenario::Scenario;
use coolopt_service::{proto, ServiceCore};
use coolopt_telemetry as telemetry;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: coolopt-serve [--stdin | --listen ADDR] [--scenario PATH]... [--stats-every SECS]\n\
         \x20                    [--collect-every SECS] [--dashboard PATH]\n\
         \n\
         --stdin              serve line-delimited JSON requests from stdin (default)\n\
         --listen ADDR        serve line-delimited JSON over TCP, one connection per thread\n\
         --scenario PATH      register a scenario file at boot (repeatable)\n\
         --stats-every SECS   print a one-line JSON stats snapshot to stderr every SECS seconds\n\
         --collect-every SECS sample telemetry into the time-series store every SECS seconds\n\
         \x20                    (default 0.25; 0 disables the collector)\n\
         --dashboard PATH     write a self-contained HTML dashboard of the store to PATH,\n\
         \x20                    rewritten every second and on clean shutdown\n\
         \n\
         each zone of a scenario becomes a tenant keyed \"{{scenario}}/{{zone}}\",\n\
         also addressable as \"{{content_hash}}/{{zone}}\""
    );
    std::process::exit(2)
}

/// Renders the whole store as one self-contained HTML file at `path`.
fn write_dashboard(path: &str) {
    let charts = telemetry::dashboard_charts(telemetry::tsdb());
    let stats = telemetry::tsdb().stats();
    let subtitle = format!(
        "{} series, {} samples in {} compressed bytes ({:.1}x)",
        stats.series,
        stats.points,
        stats.stored_bytes,
        stats.compression_ratio()
    );
    let html = telemetry::render_dashboard("coolopt-serve", &subtitle, &charts);
    if let Err(e) = std::fs::write(path, html) {
        eprintln!("coolopt-serve: dashboard {path}: {e}");
    }
}

/// The clean-shutdown tail: one last collector sample, one stats line, one
/// dashboard rewrite — so short-lived runs (stdin pipes, smoke tests) still
/// leave complete artifacts behind.
fn emit_final(
    core: &ServiceCore,
    collector: Option<&telemetry::CollectorHandle>,
    dashboard: Option<&str>,
) {
    if let Some(handle) = collector {
        handle.sample_now();
    }
    let stats = serde_json::to_string(&core.stats_doc()).expect("stats snapshots always encode");
    eprintln!("coolopt-serve: stats {stats}");
    if let Some(path) = dashboard {
        write_dashboard(path);
    }
}

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut stats_every: Option<f64> = None;
    let mut collect_every: f64 = 0.25;
    let mut dashboard: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdin" => listen = None,
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--scenario" => scenarios.push(args.next().unwrap_or_else(|| usage())),
            "--stats-every" => {
                let secs = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage());
                stats_every = Some(secs);
            }
            "--collect-every" => {
                collect_every = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--dashboard" => dashboard = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    let core = Arc::new(ServiceCore::default());
    for path in &scenarios {
        let scenario = match Scenario::load(path) {
            Ok(scenario) => scenario,
            Err(e) => {
                eprintln!("coolopt-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match core.register_scenario(&scenario) {
            Ok(tenants) => {
                for tenant in tenants {
                    eprintln!(
                        "coolopt-serve: registered {:?} ({} machines, {} engine)",
                        tenant.key(),
                        tenant.snapshot().map_or(0, |s| s.machine_count()),
                        tenant.snapshot().map_or("none", |s| s.engine_name()),
                    );
                }
            }
            Err(e) => {
                eprintln!("coolopt-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The background collector feeds the time-series store behind the
    // `query` command (a no-op without the `telemetry` feature).
    let collector = (collect_every > 0.0).then(|| {
        let core = Arc::clone(&core);
        telemetry::Collector::new(collect_every)
            .sample_registry(true)
            .source(move |now_ms, db| core.sample_into(db, now_ms))
            .start()
    });

    if let Some(secs) = stats_every {
        let core = Arc::clone(&core);
        // Detached reporter: one stats line per period for the life of the
        // process (the snapshot never blocks planning traffic).
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs_f64(secs));
            let stats =
                serde_json::to_string(&core.stats_doc()).expect("stats snapshots always encode");
            eprintln!("coolopt-serve: stats {stats}");
        });
    }

    if let Some(path) = dashboard.clone() {
        // Detached renderer: TCP servers usually exit by signal, so the
        // dashboard is kept fresh on disk rather than written only at EOF.
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs(1));
            write_dashboard(&path);
        });
    }

    match listen {
        None => serve_stdin(&core, collector.as_ref(), dashboard.as_deref()),
        Some(addr) => serve_tcp(&core, &addr),
    }
}

fn serve_stdin(
    core: &Arc<ServiceCore>,
    collector: Option<&telemetry::CollectorHandle>,
    dashboard: Option<&str>,
) -> ExitCode {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("coolopt-serve: stdin: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let encoded = proto::handle_line(core, &line);
        if writeln!(stdout, "{encoded}").is_err() {
            break;
        }
    }
    emit_final(core, collector, dashboard);
    ExitCode::SUCCESS
}

fn serve_tcp(core: &Arc<ServiceCore>, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("coolopt-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("coolopt-serve: listening on {addr}");
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("coolopt-serve: accept: {e}");
                continue;
            }
        };
        let core = Arc::clone(core);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string());
            let mut writer = match stream.try_clone() {
                Ok(writer) => writer,
                Err(e) => {
                    eprintln!("coolopt-serve: {peer}: {e}");
                    return;
                }
            };
            for line in BufReader::new(stream).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let encoded = proto::handle_line(&core, &line);
                if writeln!(writer, "{encoded}").is_err() {
                    break;
                }
            }
        });
    }
    ExitCode::SUCCESS
}
