//! Schema validation of every shipped scenario document: each file under
//! `scenarios/` must parse, validate, materialize into a consistent plant,
//! and yield a solvable smoke plan. The testbed file is additionally pinned
//! to the emitting preset, so "load the JSON" and "call the preset" can
//! never drift apart.

use coolopt_core::{solve_zones, solve_zones_uniform};
use coolopt_room::materialize;
use coolopt_scenario::{presets, zone_system, Scenario};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn shipped() -> Vec<(String, Scenario)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let scenario = Scenario::load(&path).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
        out.push((name, scenario));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn every_shipped_scenario_parses_materializes_and_plans() {
    let shipped = shipped();
    assert!(
        shipped.len() >= 2,
        "expected at least the two stock files, found {:?}",
        shipped.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    );
    for (name, scenario) in &shipped {
        let room = materialize(scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(room.len(), scenario.total_machines(), "{name}");
        // A smoke plan at half load on the declared models.
        let system = zone_system(scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        let load = 0.5 * scenario.total_machines() as f64;
        let per_zone = solve_zones(&system, load).unwrap_or_else(|e| panic!("{name}: {e}"));
        let uniform = solve_zones_uniform(&system, load).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            per_zone.total().as_watts() <= uniform.total().as_watts() + 1e-6,
            "{name}: per-zone plan must never lose to the uniform baseline"
        );
    }
}

#[test]
fn the_testbed_file_is_exactly_the_emitting_preset() {
    let path = scenarios_dir().join("testbed_rack20.json");
    let loaded = Scenario::load(&path).expect("stock testbed file parses");
    let emitted = presets::testbed_rack20(0);
    assert_eq!(
        loaded, emitted,
        "scenarios/testbed_rack20.json drifted from the preset"
    );
    assert_eq!(loaded.content_hash(), emitted.content_hash());
}

#[test]
fn the_two_zone_file_is_exactly_the_emitting_preset() {
    let path = scenarios_dir().join("two_zone_hetero.json");
    let loaded = Scenario::load(&path).expect("stock two-zone file parses");
    let emitted = presets::two_zone_hetero(0);
    assert_eq!(
        loaded, emitted,
        "scenarios/two_zone_hetero.json drifted from the preset"
    );
    assert_eq!(loaded.content_hash(), emitted.content_hash());
}
