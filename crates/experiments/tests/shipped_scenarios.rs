//! Schema validation of every shipped scenario document: each file under
//! `scenarios/` must parse, validate, materialize into a consistent plant,
//! and yield a solvable smoke plan. The shipped files are additionally
//! pinned to their emitting presets, so "load the JSON" and "call the
//! preset" can never drift apart.
//!
//! Fleet-scale documents (more than [`MATERIALIZE_LIMIT`] machines) skip
//! the physical materialization — the simulator's per-pair recirculation
//! matrix is quadratic in `n` — and are smoke-planned through the
//! hierarchical consolidation index on their declared models instead.

use coolopt_core::{solve_zones, solve_zones_uniform, HierConfig, HierIndex, PowerTerms};
use coolopt_room::materialize;
use coolopt_scenario::{presets, zone_machines, zone_system, Scenario};
use std::path::PathBuf;

/// Largest fleet the quadratic plant materialization is asked to build.
const MATERIALIZE_LIMIT: usize = 1000;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn shipped() -> Vec<(String, Scenario)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let scenario = Scenario::load(&path).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
        out.push((name, scenario));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn every_shipped_scenario_parses_materializes_and_plans() {
    let shipped = shipped();
    assert!(
        shipped.len() >= 2,
        "expected at least the two stock files, found {:?}",
        shipped.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    );
    for (name, scenario) in &shipped {
        // The declared planning problem must always assemble.
        let system = zone_system(scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(system.len(), scenario.zone_count(), "{name}");
        if scenario.total_machines() > MATERIALIZE_LIMIT {
            hier_smoke_plan(name, scenario);
            continue;
        }
        let room = materialize(scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(room.len(), scenario.total_machines(), "{name}");
        // A smoke plan at half load on the declared models.
        let load = 0.5 * scenario.total_machines() as f64;
        let per_zone = solve_zones(&system, load).unwrap_or_else(|e| panic!("{name}: {e}"));
        let uniform = solve_zones_uniform(&system, load).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            per_zone.total().as_watts() <= uniform.total().as_watts() + 1e-6,
            "{name}: per-zone plan must never lose to the uniform baseline"
        );
    }
}

/// Fleet-scale smoke plan: the declared machines of every zone feed the
/// hierarchical consolidation index, which must build and answer a
/// mid-range load with a finite certified error bound.
fn hier_smoke_plan(name: &str, scenario: &Scenario) {
    let t_max = scenario.policy.planning_t_max();
    for spec in &scenario.zones {
        let machines = zone_machines(scenario, spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let pairs: Vec<(f64, f64)> = machines
            .iter()
            .map(|m| {
                (
                    m.thermal.k_coefficient(t_max, &m.power),
                    m.thermal.alpha_over_beta(),
                )
            })
            .collect();
        let mean_w1 = machines
            .iter()
            .map(|m| m.power.w1().as_watts())
            .sum::<f64>()
            / machines.len() as f64;
        let mean_w2 = machines
            .iter()
            .map(|m| m.power.w2().as_watts())
            .sum::<f64>()
            / machines.len() as f64;
        let terms = PowerTerms::unbounded(mean_w2, spec.cooling.cf_watts_per_kelvin * mean_w1);
        let hier = HierIndex::build(&pairs, HierConfig::auto(&pairs))
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", spec.name));
        let load = 0.5 * pairs.len() as f64;
        let (plan, bound) = hier
            .query_min_power_bounded(&terms, load, None)
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", spec.name))
            .unwrap_or_else(|| panic!("{name}/{}: half load must be plannable", spec.name));
        assert!(
            plan.k >= load.ceil() as usize,
            "{name}: plan must carry the load"
        );
        assert!(
            bound.is_finite() && bound >= 0.0,
            "{name}: certificate must be finite, got {bound}"
        );
    }
}

#[test]
fn the_testbed_file_is_exactly_the_emitting_preset() {
    let path = scenarios_dir().join("testbed_rack20.json");
    let loaded = Scenario::load(&path).expect("stock testbed file parses");
    let emitted = presets::testbed_rack20(0);
    assert_eq!(
        loaded, emitted,
        "scenarios/testbed_rack20.json drifted from the preset"
    );
    assert_eq!(loaded.content_hash(), emitted.content_hash());
}

#[test]
fn the_two_zone_file_is_exactly_the_emitting_preset() {
    let path = scenarios_dir().join("two_zone_hetero.json");
    let loaded = Scenario::load(&path).expect("stock two-zone file parses");
    let emitted = presets::two_zone_hetero(0);
    assert_eq!(
        loaded, emitted,
        "scenarios/two_zone_hetero.json drifted from the preset"
    );
    assert_eq!(loaded.content_hash(), emitted.content_hash());
}

#[test]
fn the_fleet_files_are_exactly_the_emitting_presets() {
    for n in [10_000usize, 100_000] {
        let file = format!("fleet_{}.json", presets::fleet_tag(n));
        let path = scenarios_dir().join(&file);
        let loaded = Scenario::load(&path)
            .unwrap_or_else(|e| panic!("stock fleet file {file} rejected: {e}"));
        let emitted = presets::large_fleet(24, n, 0);
        assert_eq!(loaded, emitted, "scenarios/{file} drifted from the preset");
        assert_eq!(loaded.content_hash(), emitted.content_hash());
        assert_eq!(loaded.total_machines(), n);
        loaded.validate().unwrap_or_else(|e| panic!("{file}: {e}"));
    }
}
