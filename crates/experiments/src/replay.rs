//! Analytic trace replay on the linear-RC transient model.
//!
//! [`crate::runtime::run_load_trace`] drives the *numeric* room substrate
//! step by step — thousands of RK4 sub-steps per replan interval. This
//! module replays the same controller decisions on the fitted
//! [`RcNetwork`] instead: between control events the network is LTI, so an
//! exact-step [`Propagator`] crosses a whole recording interval with one
//! matrix–vector product, and a [`PropagatorCache`] keyed on
//! `(step, input fingerprint)` makes repeated plans (a controller revisits
//! few distinct operating points) nearly free.
//!
//! The replay deliberately trades fidelity for speed relative to the full
//! simulation: machines switch power instantly (no boot transients), power
//! follows the fitted models (no sensor noise), and control events take
//! effect at recording-step boundaries. That makes it the right engine for
//! wide design sweeps and for the transient benchmarks, with the numeric
//! substrate kept as the oracle.
//!
//! [`ReplayEngine::Euler`] and [`ReplayEngine::Rk4`] run the *same* replay
//! on the same [`RcNetwork`] through generic integrators — the
//! apples-to-apples baseline the exact-step engine is benchmarked against.

use crate::runtime::TracePoint;
use coolopt_alloc::{AllocationPlan, Method, Planner, PolicyError};
use coolopt_model::{RcNetwork, RcParams, RoomModel};
use coolopt_sim::{
    ForwardEuler, Integrator, LinearDynamics, LinearOde, PropagatorCache, Rk4, SimScratch,
    SoaRecorder, TimeSeries,
};
use coolopt_telemetry as telemetry;
use coolopt_units::{Joules, Seconds, TempDelta, Temperature, Watts};
use serde::{Deserialize, Serialize};

/// How the replay advances the RC state across a recording step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplayEngine {
    /// Exact-step propagator: one matrix–vector product per recording step,
    /// memoized per `(step, input)` pair. The fast path.
    Exact,
    /// Forward-Euler fallback at the given sub-step (accuracy oracle /
    /// benchmark baseline).
    Euler(Seconds),
    /// Classic RK4 fallback at the given sub-step (accuracy oracle /
    /// benchmark baseline).
    Rk4(Seconds),
}

/// Knobs of an analytic replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOptions {
    /// Replan at least this often, even if demand has not changed.
    pub replan_interval: Seconds,
    /// Sampling resolution: temperatures are checked and power recorded at
    /// this granularity, and control events take effect on its boundaries.
    pub record_every: Seconds,
    /// Guard band for the planner built by [`replay_trace`]'s convenience
    /// wrapper; ignored when a caller-owned planner is supplied.
    pub guard: TempDelta,
    /// Transient constants of the RC network.
    pub params: RcParams,
    /// The stepping engine.
    pub engine: ReplayEngine,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            replan_interval: Seconds::new(900.0),
            record_every: Seconds::new(10.0),
            guard: coolopt_alloc::plan::DEFAULT_GUARD,
            params: RcParams::default(),
            engine: ReplayEngine::Exact,
        }
    }
}

/// What an analytic replay produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Total predicted electrical energy over the trace.
    pub energy: Joules,
    /// Replayed duration.
    pub duration: Seconds,
    /// Mean total power.
    pub mean_power: Watts,
    /// Seconds during which some modeled CPU exceeded `T_max`.
    pub violation_seconds: f64,
    /// Hottest modeled CPU temperature seen at any sampling instant.
    pub max_cpu: Temperature,
    /// Number of plans applied.
    pub replans: usize,
    /// Number of planning attempts that failed (previous plan kept).
    pub plan_failures: usize,
    /// Distinct propagators built (exact engine only; zero for fallbacks),
    /// read from the cache's own tally — the single source of truth. Small
    /// counts on long traces are the cache paying off.
    pub propagators_built: usize,
    /// Propagator lookups served from the cache (exact engine only).
    pub propagator_hits: u64,
    /// Recorded total-power series.
    pub power_series: TimeSeries,
}

/// Fills `powers` with each machine's modeled draw under `plan` (zero for
/// machines the plan leaves off).
fn plan_powers(model: &RoomModel, plan: &AllocationPlan, powers: &mut Vec<f64>) {
    powers.clear();
    powers.resize(model.len(), 0.0);
    for &i in &plan.on {
        powers[i] = model.power().predict(plan.loads[i]).as_watts();
    }
}

/// Replays `trace` under `method` on the fitted transient model, using a
/// planner built from `model` with `options.guard`.
///
/// # Errors
///
/// Returns [`PolicyError`] only if the *initial* plan fails; later failures
/// keep the previous plan and are counted in
/// [`ReplayOutcome::plan_failures`].
///
/// # Panics
///
/// Panics if `trace` is empty or not time-sorted, `total` or
/// `options.record_every` is not positive, or the fitted model is not
/// RC-representable (some `β_i ≤ 1/g`; see [`RcNetwork::new`]).
pub fn replay_trace(
    model: &RoomModel,
    set_points: &coolopt_cooling::SetPointTable,
    method: Method,
    trace: &[TracePoint],
    total: Seconds,
    options: &ReplayOptions,
) -> Result<ReplayOutcome, PolicyError> {
    let planner = Planner::with_guard(model, set_points, options.guard);
    replay_trace_with(&planner, model, method, trace, total, options)
}

/// Like [`replay_trace`], but reuses a caller-owned planner (and its
/// memoized solver engine). `options.guard` is ignored; the planner's own
/// guard applies. `model` should be the *unguarded* fitted model — it
/// parameterizes the RC network and supplies the true `T_max`.
///
/// # Errors
///
/// Returns [`PolicyError`] only if the *initial* plan fails.
///
/// # Panics
///
/// As [`replay_trace`].
pub fn replay_trace_with(
    planner: &Planner,
    model: &RoomModel,
    method: Method,
    trace: &[TracePoint],
    total: Seconds,
    options: &ReplayOptions,
) -> Result<ReplayOutcome, PolicyError> {
    assert!(!trace.is_empty(), "trace must have at least one point");
    assert!(
        trace.windows(2).all(|w| w[0].at <= w[1].at),
        "trace must be time-sorted"
    );
    let total_s = total.as_secs_f64();
    assert!(
        total_s.is_finite() && total_s > 0.0,
        "total must be positive, got {total_s} s"
    );
    let h = options.record_every.as_secs_f64();
    assert!(
        h.is_finite() && h > 0.0,
        "record_every must be positive, got {h} s"
    );

    let mut net = RcNetwork::new(model, options.params)
        .expect("fitted model must be RC-representable for analytic replay");
    let dim = LinearDynamics::dim(&net);
    let t_max = model.t_max();

    let mut replans = 0usize;
    let mut plan_failures = 0usize;
    let mut powers = Vec::with_capacity(model.len());
    let mut current = planner.plan(method, trace[0].load)?;
    plan_powers(model, &current, &mut powers);
    net.set_input(&powers, current.t_ac_target);
    replans += 1;

    let mut state = net.uniform_state(options.params.t_room_ref);
    let mut step_scratch = vec![0.0; dim];
    let mut sim_scratch = SimScratch::with_dim(dim);
    let mut cache = PropagatorCache::new();
    // The fallback engines integrate the same system through the generic
    // path; the ODE form is rebuilt only when the input (bias) changes.
    let mut ode = LinearOde::new(&net);

    let steps = (total_s / h).ceil() as usize;
    let mut recorder = SoaRecorder::new(1, 1, steps + 1);
    let mut energy = Joules::ZERO;
    let mut violation_seconds = 0.0;
    let mut max_cpu = f64::NEG_INFINITY;
    let mut trace_idx = 0usize;
    let mut next_replan = options.replan_interval.as_secs_f64();

    for k in 0..steps {
        let now = k as f64 * h;
        let step_len = h.min(total_s - now);

        // Demand changes take effect at this boundary and force a replan.
        let mut demand_changed = false;
        while trace_idx + 1 < trace.len() && trace[trace_idx + 1].at.as_secs_f64() <= now {
            trace_idx += 1;
            demand_changed = true;
        }
        if demand_changed || now >= next_replan {
            match planner.plan(method, trace[trace_idx].load) {
                Ok(plan) => {
                    plan_powers(model, &plan, &mut powers);
                    net.set_input(&powers, plan.t_ac_target);
                    ode = LinearOde::new(&net);
                    current = plan;
                    replans += 1;
                }
                Err(_) => plan_failures += 1,
            }
            next_replan = now + options.replan_interval.as_secs_f64();
        }

        let computing: f64 = powers.iter().sum();
        let cooling = model.cooling().predict(current.t_ac_target).as_watts();
        let power = computing + cooling;
        recorder.offer(Seconds::new(now), &[power]);
        energy += Watts::new(power) * Seconds::new(step_len);

        match options.engine {
            ReplayEngine::Exact => {
                let prop =
                    cache.get_or_build(&net, Seconds::new(step_len), net.input_fingerprint());
                prop.step(&mut state, &mut step_scratch);
            }
            ReplayEngine::Euler(dt) => {
                sub_step(
                    &ForwardEuler,
                    &ode,
                    now,
                    step_len,
                    dt,
                    &mut state,
                    &mut sim_scratch,
                );
            }
            ReplayEngine::Rk4(dt) => {
                sub_step(
                    &Rk4::new(),
                    &ode,
                    now,
                    step_len,
                    dt,
                    &mut state,
                    &mut sim_scratch,
                );
            }
        }

        for i in 0..net.machines() {
            let t = state[net.cpu_index(i)];
            max_cpu = max_cpu.max(t);
            if t > t_max.as_kelvin() {
                violation_seconds += step_len;
                break;
            }
        }
    }

    telemetry::counter("coolopt_replans_total").add(replans as u64);
    telemetry::counter("coolopt_replan_failures_total").add(plan_failures as u64);
    Ok(ReplayOutcome {
        energy,
        duration: total,
        mean_power: energy / total,
        violation_seconds,
        max_cpu: Temperature::from_kelvin(max_cpu),
        replans,
        plan_failures,
        propagators_built: cache.builds() as usize,
        propagator_hits: cache.hits(),
        power_series: recorder.to_series(0),
    })
}

/// Crosses `step_len` with uniform sub-steps of at most `dt` through a
/// generic integrator.
fn sub_step<I: Integrator>(
    integrator: &I,
    ode: &LinearOde,
    t0: f64,
    step_len: f64,
    dt: Seconds,
    state: &mut [f64],
    scratch: &mut SimScratch,
) {
    let want = dt.as_secs_f64();
    assert!(
        want.is_finite() && want > 0.0,
        "fallback sub-step must be positive, got {want} s"
    );
    let m = (step_len / want).ceil().max(1.0) as usize;
    let sub = Seconds::new(step_len / m as f64);
    for j in 0..m {
        integrator.step_with(
            ode,
            Seconds::new(t0 + j as f64 * sub.as_secs_f64()),
            sub,
            state,
            scratch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::sinusoidal_trace;
    use crate::testbed::Testbed;

    fn setup(machines: usize, seed: u64) -> (Testbed, Planner) {
        let tb = Testbed::build_sized(machines, seed).unwrap();
        let planner = Planner::with_guard(
            &tb.profile.model,
            &tb.profile.cooling.set_points,
            coolopt_alloc::plan::DEFAULT_GUARD,
        );
        (tb, planner)
    }

    #[test]
    fn exact_engine_matches_the_rk4_fallback() {
        let (tb, planner) = setup(4, 41);
        let trace = sinusoidal_trace(4, 0.25, 0.75, Seconds::new(3600.0), 4);
        let total = Seconds::new(3600.0);
        let exact = replay_trace_with(
            &planner,
            &tb.profile.model,
            Method::numbered(8),
            &trace,
            total,
            &ReplayOptions::default(),
        )
        .unwrap();
        let rk4 = replay_trace_with(
            &planner,
            &tb.profile.model,
            Method::numbered(8),
            &trace,
            total,
            &ReplayOptions {
                engine: ReplayEngine::Rk4(Seconds::new(0.05)),
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        // Controller decisions and (analytic) energy are engine-independent…
        assert_eq!(exact.replans, rk4.replans);
        assert_eq!(exact.plan_failures, rk4.plan_failures);
        assert_eq!(exact.energy, rk4.energy);
        assert_eq!(exact.power_series, rk4.power_series);
        // …and the exact-step states agree with the tiny-step oracle.
        assert!(
            (exact.max_cpu.as_kelvin() - rk4.max_cpu.as_kelvin()).abs() < 1e-5,
            "exact {} vs rk4 {}",
            exact.max_cpu,
            rk4.max_cpu
        );
        assert_eq!(exact.violation_seconds, rk4.violation_seconds);
        assert_eq!(rk4.propagators_built, 0);
        assert!(exact.propagators_built > 0);
    }

    #[test]
    fn propagator_cache_collapses_repeated_operating_points() {
        let (tb, planner) = setup(4, 43);
        // Constant demand, hourly trace with quarter-hour replans: every
        // interval reuses one (step, input) propagator.
        let trace = [TracePoint {
            at: Seconds::ZERO,
            load: 2.0,
        }];
        let outcome = replay_trace_with(
            &planner,
            &tb.profile.model,
            Method::numbered(8),
            &trace,
            Seconds::new(3600.0),
            &ReplayOptions::default(),
        )
        .unwrap();
        assert!(outcome.replans >= 4, "timer must fire: {}", outcome.replans);
        assert!(
            outcome.propagators_built <= 2,
            "cache failed to collapse repeats: built {}",
            outcome.propagators_built
        );
        assert_eq!(outcome.plan_failures, 0);
        assert!(outcome.mean_power.as_watts() > 0.0);
        assert_eq!(outcome.power_series.len(), 360);
        assert!(outcome.max_cpu.as_celsius() > 25.0);
    }

    #[test]
    fn replay_approximates_the_numeric_substrate() {
        // The analytic replay should land in the same energy ballpark as
        // the full simulation (it ignores boot transients and noise, so
        // only a coarse agreement is expected).
        let (mut tb, planner) = setup(4, 47);
        let trace = [TracePoint {
            at: Seconds::ZERO,
            load: 2.0,
        }];
        let total = Seconds::new(3000.0);
        let analytic = replay_trace_with(
            &planner,
            &tb.profile.model,
            Method::numbered(8),
            &trace,
            total,
            &ReplayOptions::default(),
        )
        .unwrap();
        let numeric = crate::runtime::run_load_trace_with(
            &planner,
            &mut tb,
            Method::numbered(8),
            &trace,
            total,
            &crate::runtime::RuntimeOptions::default(),
        )
        .unwrap();
        let a = analytic.mean_power.as_watts();
        let n = numeric.mean_power.as_watts();
        assert!(
            (a - n).abs() / n < 0.25,
            "analytic {a:.0} W vs numeric {n:.0} W"
        );
    }
}
