//! The schema-stable telemetry run report.
//!
//! A run report is the machine-readable end-of-run artifact every binary
//! (`reproduce`, `ablation`, `bench_index`) can emit: one JSON document
//! bundling the global metrics snapshot with the run-level observables the
//! paper's evaluation cares about — replan counts, the computing/cooling
//! energy split per demand plateau, the propagator-cache hit rate, and the
//! worst-case guard-band margin. The schema is versioned
//! ([`RUN_REPORT_SCHEMA`]) so downstream tooling can detect drift.
//!
//! JSON is rendered by hand (sorted, stable key order) rather than through
//! serde: the metrics section embeds
//! [`RegistrySnapshot::to_json`](coolopt_telemetry::RegistrySnapshot::to_json)
//! verbatim, and the vendored serde stand-in has no raw-value passthrough.

use crate::multizone::{MultiZoneOutcome, VariantOutcome};
use crate::replay::ReplayOutcome;
use crate::runtime::TraceOutcome;
use coolopt_scenario::Scenario;
use coolopt_sim::HealthReport;
use coolopt_telemetry::RegistrySnapshot;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag of the run-report JSON document.
pub const RUN_REPORT_SCHEMA: &str = "coolopt-telemetry-run-v1";

/// Exports the flight recorder's drop count as the
/// `coolopt_flight_records_dropped` gauge and returns it, so report
/// builders that snapshot the registry right after carry the count in
/// both the run report and the Prometheus exposition. Zero (and no
/// gauge) without the `telemetry` feature.
pub fn export_flight_dropped() -> u64 {
    let dropped = coolopt_telemetry::flight_dropped();
    coolopt_telemetry::gauge("coolopt_flight_records_dropped").set(dropped as f64);
    dropped
}

/// Everything a run report captures about one binary invocation.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Run label (becomes part of the output file name).
    pub name: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Which scenario document the run was driven by (name + content hash
    /// of the canonical JSON), when one was involved.
    pub scenario: Option<ScenarioSection>,
    /// Whether the metrics core was compiled in (when `false`, the metrics
    /// section is structurally present but empty).
    pub metrics_enabled: bool,
    /// Flight-recorder records lost to ring lap or contention — non-zero
    /// means the exported Chrome trace is incomplete.
    pub flight_dropped: u64,
    /// The frozen global registry (counters, gauges, histograms).
    pub metrics: RegistrySnapshot,
    /// Runtime replanning observables, when the run drove a load trace.
    pub trace: Option<TraceSection>,
    /// Analytic-replay observables, when the run replayed a trace.
    pub replay: Option<ReplaySection>,
    /// Model-health watchdog verdicts, when the run drove a trace with
    /// telemetry compiled in.
    pub health: Option<HealthSection>,
    /// Multi-zone per-zone-vs-uniform comparison, when the run drove a
    /// multi-zone scenario.
    pub multizone: Option<MultiZoneSection>,
}

/// Provenance of the scenario document a run was driven by.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioSection {
    /// The document's `name` field.
    pub name: String,
    /// SHA-256 of the canonical compact JSON rendering.
    pub sha256: String,
}

impl ScenarioSection {
    /// Records a scenario's provenance.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        ScenarioSection {
            name: scenario.name.clone(),
            sha256: scenario.content_hash(),
        }
    }
}

/// One simulated plan of the multi-zone experiment, flattened for the
/// report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VariantSection {
    /// Commanded supply temperature per CRAC (°C).
    pub t_ac_celsius: Vec<f64>,
    /// The planner's predicted total power (W).
    pub predicted_total_watts: f64,
    /// Measured mean computing power (W).
    pub computing_watts: f64,
    /// Measured mean cooling power (W).
    pub cooling_watts: f64,
    /// Measured mean total power (W).
    pub total_watts: f64,
    /// Hottest true CPU temperature during the window (°C).
    pub max_cpu_celsius: f64,
    /// Smallest observed distance to `T_max` (K).
    pub min_margin_kelvin: f64,
    /// Whether the plant settled within budget.
    pub settled: bool,
}

impl VariantSection {
    /// Extracts the section from a [`VariantOutcome`].
    pub fn from_outcome(outcome: &VariantOutcome) -> Self {
        VariantSection {
            t_ac_celsius: outcome.t_ac.iter().map(|t| t.as_celsius()).collect(),
            predicted_total_watts: outcome.predicted_total.as_watts(),
            computing_watts: outcome.computing.as_watts(),
            cooling_watts: outcome.cooling.as_watts(),
            total_watts: outcome.total.as_watts(),
            max_cpu_celsius: outcome.max_cpu.as_celsius(),
            min_margin_kelvin: outcome.min_margin_kelvin,
            settled: outcome.settled,
        }
    }
}

/// Multi-zone experiment observables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiZoneSection {
    /// Zone count.
    pub zones: u64,
    /// Machine count.
    pub machines: u64,
    /// Total load driven.
    pub total_load: f64,
    /// Measured savings of the per-zone plan over uniform (fraction).
    pub savings_fraction: f64,
    /// The per-zone plan's outcome.
    pub per_zone: VariantSection,
    /// The uniform baseline's outcome.
    pub uniform: VariantSection,
}

impl MultiZoneSection {
    /// Extracts the section from a [`MultiZoneOutcome`].
    pub fn from_outcome(outcome: &MultiZoneOutcome) -> Self {
        MultiZoneSection {
            zones: outcome.zones as u64,
            machines: outcome.machines as u64,
            total_load: outcome.total_load,
            savings_fraction: outcome.savings_fraction(),
            per_zone: VariantSection::from_outcome(&outcome.per_zone),
            uniform: VariantSection::from_outcome(&outcome.uniform),
        }
    }
}

/// Model-health observables of a run: the production verdict plus an
/// optional fault-injected control scenario.
#[derive(Debug, Clone, Default)]
pub struct HealthSection {
    /// The watchdog's verdict over the run's main trace.
    pub report: HealthReport,
    /// Verdict of the artificially drifted control scenario (a short
    /// re-run with a residual bias injected), demonstrating that the
    /// detector actually trips; `None` when the demo was skipped.
    pub drift_demo: Option<HealthReport>,
}

/// Run-level observables of an online replanning trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSection {
    /// Evaluation method driven over the trace.
    pub method: String,
    /// Total electrical energy (J).
    pub energy_joules: f64,
    /// Computing (server) share of the energy (J).
    pub computing_joules: f64,
    /// Cooling (CRAC) share of the energy (J).
    pub cooling_joules: f64,
    /// Plans applied.
    pub replans: u64,
    /// Planning attempts that failed.
    pub plan_failures: u64,
    /// Worst-case distance (K) between the hottest CPU and `T_max`.
    pub min_margin_kelvin: f64,
    /// Per-plateau energy split: `(start_seconds, load, computing_joules,
    /// cooling_joules)`.
    pub segments: Vec<(f64, f64, f64, f64)>,
}

impl TraceSection {
    /// Extracts the section from a [`TraceOutcome`].
    pub fn from_outcome(method: impl Into<String>, outcome: &TraceOutcome) -> Self {
        TraceSection {
            method: method.into(),
            energy_joules: outcome.energy.as_joules(),
            computing_joules: outcome.computing_energy.as_joules(),
            cooling_joules: outcome.cooling_energy.as_joules(),
            replans: outcome.replans as u64,
            plan_failures: outcome.plan_failures as u64,
            min_margin_kelvin: outcome.min_margin_kelvin,
            segments: outcome
                .segments
                .iter()
                .map(|s| {
                    (
                        s.start.as_secs_f64(),
                        s.load,
                        s.computing.as_joules(),
                        s.cooling.as_joules(),
                    )
                })
                .collect(),
        }
    }
}

/// Run-level observables of an analytic replay.
#[derive(Debug, Clone, Default)]
pub struct ReplaySection {
    /// Evaluation method replayed.
    pub method: String,
    /// Total predicted energy (J).
    pub energy_joules: f64,
    /// Plans applied.
    pub replans: u64,
    /// Planning attempts that failed.
    pub plan_failures: u64,
    /// Distinct propagators built (the cache's misses).
    pub propagators_built: u64,
    /// Propagator lookups served from the cache.
    pub propagator_hits: u64,
}

impl ReplaySection {
    /// Extracts the section from a [`ReplayOutcome`].
    pub fn from_outcome(method: impl Into<String>, outcome: &ReplayOutcome) -> Self {
        ReplaySection {
            method: method.into(),
            energy_joules: outcome.energy.as_joules(),
            replans: outcome.replans as u64,
            plan_failures: outcome.plan_failures as u64,
            propagators_built: outcome.propagators_built as u64,
            propagator_hits: outcome.propagator_hits,
        }
    }

    /// Fraction of propagator lookups served from the cache; `None` before
    /// the first lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.propagator_hits + self.propagators_built;
        (total > 0).then(|| self.propagator_hits as f64 / total as f64)
    }
}

fn push_str_field(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64_field(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:?}");
    } else {
        out.push_str("null");
    }
}

fn push_health_report(out: &mut String, report: &HealthReport) {
    let _ = write!(out, "{{\"samples\":{}", report.samples);
    let _ = write!(out, ",\"drifted\":{}", report.drifted);
    let _ = write!(out, ",\"healthy\":{}", report.healthy());
    out.push_str(",\"worst_level\":");
    push_str_field(out, report.worst_level.as_str());
    out.push_str(",\"closest_margin_kelvin\":");
    push_f64_field(out, report.closest_margin_kelvin);
    out.push_str(",\"closest_margin_at_seconds\":");
    push_f64_field(out, report.closest_margin_at_seconds);
    out.push_str(",\"recommended_guard_kelvin\":");
    push_f64_field(out, report.recommended_guard_kelvin);
    out.push_str(",\"machines\":[");
    for (i, m) in report.machines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"machine\":{},\"samples\":{}", m.machine, m.samples);
        out.push_str(",\"mean_residual_kelvin\":");
        push_f64_field(out, m.mean_residual_kelvin);
        out.push_str(",\"std_residual_kelvin\":");
        push_f64_field(out, m.std_residual_kelvin);
        out.push_str(",\"ewma_residual_kelvin\":");
        push_f64_field(out, m.ewma_residual_kelvin);
        out.push_str(",\"peak_abs_ewma_kelvin\":");
        push_f64_field(out, m.peak_abs_ewma_kelvin);
        out.push_str(",\"max_abs_residual_kelvin\":");
        push_f64_field(out, m.max_abs_residual_kelvin);
        let _ = write!(out, ",\"drifted\":{}}}", m.drifted);
    }
    out.push_str("]}");
}

fn push_variant_section(out: &mut String, v: &VariantSection) {
    out.push_str("{\"t_ac_celsius\":[");
    for (i, t) in v.t_ac_celsius.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64_field(out, *t);
    }
    out.push_str("],\"predicted_total_watts\":");
    push_f64_field(out, v.predicted_total_watts);
    out.push_str(",\"computing_watts\":");
    push_f64_field(out, v.computing_watts);
    out.push_str(",\"cooling_watts\":");
    push_f64_field(out, v.cooling_watts);
    out.push_str(",\"total_watts\":");
    push_f64_field(out, v.total_watts);
    out.push_str(",\"max_cpu_celsius\":");
    push_f64_field(out, v.max_cpu_celsius);
    out.push_str(",\"min_margin_kelvin\":");
    push_f64_field(out, v.min_margin_kelvin);
    let _ = write!(out, ",\"settled\":{}}}", v.settled);
}

impl RunReport {
    /// Renders the report as its schema-stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":");
        push_str_field(&mut out, RUN_REPORT_SCHEMA);
        out.push_str(",\"name\":");
        push_str_field(&mut out, &self.name);
        let _ = write!(out, ",\"seed\":{}", self.seed);
        out.push_str(",\"scenario\":");
        match &self.scenario {
            None => out.push_str("null"),
            Some(s) => {
                out.push_str("{\"name\":");
                push_str_field(&mut out, &s.name);
                out.push_str(",\"sha256\":");
                push_str_field(&mut out, &s.sha256);
                out.push('}');
            }
        }
        let _ = write!(out, ",\"metrics_enabled\":{}", self.metrics_enabled);
        let _ = write!(out, ",\"flight_dropped\":{}", self.flight_dropped);
        // The metrics snapshot renders itself; embed its object verbatim.
        out.push_str(",\"metrics\":");
        out.push_str(&self.metrics.to_json());
        out.push_str(",\"trace\":");
        match &self.trace {
            None => out.push_str("null"),
            Some(t) => {
                out.push_str("{\"method\":");
                push_str_field(&mut out, &t.method);
                out.push_str(",\"energy_joules\":");
                push_f64_field(&mut out, t.energy_joules);
                out.push_str(",\"computing_joules\":");
                push_f64_field(&mut out, t.computing_joules);
                out.push_str(",\"cooling_joules\":");
                push_f64_field(&mut out, t.cooling_joules);
                let _ = write!(out, ",\"replans\":{}", t.replans);
                let _ = write!(out, ",\"plan_failures\":{}", t.plan_failures);
                out.push_str(",\"min_margin_kelvin\":");
                push_f64_field(&mut out, t.min_margin_kelvin);
                out.push_str(",\"segments\":[");
                for (i, &(start, load, computing, cooling)) in t.segments.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"start_seconds\":");
                    push_f64_field(&mut out, start);
                    out.push_str(",\"load\":");
                    push_f64_field(&mut out, load);
                    out.push_str(",\"computing_joules\":");
                    push_f64_field(&mut out, computing);
                    out.push_str(",\"cooling_joules\":");
                    push_f64_field(&mut out, cooling);
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"replay\":");
        match &self.replay {
            None => out.push_str("null"),
            Some(r) => {
                out.push_str("{\"method\":");
                push_str_field(&mut out, &r.method);
                out.push_str(",\"energy_joules\":");
                push_f64_field(&mut out, r.energy_joules);
                let _ = write!(out, ",\"replans\":{}", r.replans);
                let _ = write!(out, ",\"plan_failures\":{}", r.plan_failures);
                let _ = write!(out, ",\"propagators_built\":{}", r.propagators_built);
                let _ = write!(out, ",\"propagator_hits\":{}", r.propagator_hits);
                out.push_str(",\"cache_hit_rate\":");
                match r.cache_hit_rate() {
                    Some(rate) => push_f64_field(&mut out, rate),
                    None => out.push_str("null"),
                }
                out.push('}');
            }
        }
        out.push_str(",\"health\":");
        match &self.health {
            None => out.push_str("null"),
            Some(h) => {
                out.push_str("{\"report\":");
                push_health_report(&mut out, &h.report);
                out.push_str(",\"drift_demo\":");
                match &h.drift_demo {
                    None => out.push_str("null"),
                    Some(demo) => push_health_report(&mut out, demo),
                }
                out.push('}');
            }
        }
        out.push_str(",\"multizone\":");
        match &self.multizone {
            None => out.push_str("null"),
            Some(m) => {
                let _ = write!(out, "{{\"zones\":{},\"machines\":{}", m.zones, m.machines);
                out.push_str(",\"total_load\":");
                push_f64_field(&mut out, m.total_load);
                out.push_str(",\"savings_fraction\":");
                push_f64_field(&mut out, m.savings_fraction);
                for (key, v) in [("per_zone", &m.per_zone), ("uniform", &m.uniform)] {
                    let _ = write!(out, ",\"{key}\":");
                    push_variant_section(&mut out, v);
                }
                out.push('}');
            }
        }
        out.push('}');
        out
    }

    /// Writes the report as `DIR/telemetry_<name>.json`, creating `DIR` if
    /// needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, full disk, …).
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("telemetry_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Renders the human-readable end-of-run summary: the run-level
    /// observables followed by the metrics table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== telemetry: {} (seed {}) ===", self.name, self.seed);
        if let Some(s) = &self.scenario {
            let _ = writeln!(out, "scenario: {} (sha256 {})", s.name, s.sha256);
        }
        if let Some(m) = &self.multizone {
            let _ = writeln!(
                out,
                "multizone: {} zones, {} machines at load {:.1}: per-zone {:.1} W vs \
                 uniform {:.1} W ({:.2} % saved), min margin {:.2} K",
                m.zones,
                m.machines,
                m.total_load,
                m.per_zone.total_watts,
                m.uniform.total_watts,
                m.savings_fraction * 100.0,
                m.per_zone.min_margin_kelvin,
            );
        }
        if let Some(t) = &self.trace {
            let _ = writeln!(
                out,
                "trace [{}]: energy {:.1} kJ (computing {:.1} kJ, cooling {:.1} kJ), \
                 {} replans ({} failed), min margin {:.2} K",
                t.method,
                t.energy_joules / 1e3,
                t.computing_joules / 1e3,
                t.cooling_joules / 1e3,
                t.replans,
                t.plan_failures,
                t.min_margin_kelvin,
            );
        }
        if let Some(r) = &self.replay {
            let hit_rate = r
                .cache_hit_rate()
                .map_or("n/a".to_string(), |h| format!("{:.1} %", h * 100.0));
            let _ = writeln!(
                out,
                "replay [{}]: energy {:.1} kJ, {} replans ({} failed), \
                 {} propagators built, cache hit rate {}",
                r.method,
                r.energy_joules / 1e3,
                r.replans,
                r.plan_failures,
                r.propagators_built,
                hit_rate,
            );
        }
        if let Some(h) = &self.health {
            let r = &h.report;
            let margin = if r.closest_margin_kelvin.is_finite() {
                format!(
                    "{:.2} K @ {:.0} s",
                    r.closest_margin_kelvin, r.closest_margin_at_seconds
                )
            } else {
                "n/a".to_string()
            };
            let _ = writeln!(
                out,
                "health: {} ({} residual samples, {} machines), drift {}, \
                 closest T_max margin {margin} (worst level {}), recommended guard {:.2} K",
                if r.healthy() { "healthy" } else { "UNHEALTHY" },
                r.samples,
                r.machines.len(),
                if r.drifted { "DETECTED" } else { "none" },
                r.worst_level.as_str(),
                r.recommended_guard_kelvin,
            );
            if let Some(demo) = &h.drift_demo {
                let _ = writeln!(
                    out,
                    "health drift demo: injected bias {} the detector \
                     ({} samples, final worst level {})",
                    if demo.drifted {
                        "TRIPPED"
                    } else {
                        "DID NOT TRIP"
                    },
                    demo.samples,
                    demo.worst_level.as_str(),
                );
            }
        }
        out.push_str(&self.metrics.render_table());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            name: "unit".to_string(),
            seed: 7,
            scenario: Some(ScenarioSection {
                name: "two_zone_hetero".to_string(),
                sha256: "ab".repeat(32),
            }),
            multizone: Some(MultiZoneSection {
                zones: 2,
                machines: 14,
                total_load: 7.0,
                savings_fraction: 0.05,
                per_zone: VariantSection {
                    t_ac_celsius: vec![18.0, 14.5],
                    predicted_total_watts: 900.0,
                    computing_watts: 700.0,
                    cooling_watts: 250.0,
                    total_watts: 950.0,
                    max_cpu_celsius: 55.0,
                    min_margin_kelvin: 5.0,
                    settled: true,
                },
                uniform: VariantSection {
                    t_ac_celsius: vec![16.0, 16.0],
                    total_watts: 1000.0,
                    ..VariantSection::default()
                },
            }),
            metrics_enabled: coolopt_telemetry::metrics_enabled(),
            flight_dropped: 3,
            metrics: RegistrySnapshot::default(),
            trace: Some(TraceSection {
                method: "#8".to_string(),
                energy_joules: 1000.0,
                computing_joules: 800.0,
                cooling_joules: 200.0,
                replans: 3,
                plan_failures: 0,
                min_margin_kelvin: 4.5,
                segments: vec![(0.0, 2.0, 500.0, 120.0), (600.0, 4.0, 300.0, 80.0)],
            }),
            replay: Some(ReplaySection {
                method: "#8".to_string(),
                energy_joules: 990.0,
                replans: 3,
                plan_failures: 0,
                propagators_built: 2,
                propagator_hits: 18,
            }),
            health: Some(HealthSection {
                report: HealthReport {
                    samples: 40,
                    machines: vec![coolopt_sim::MachineHealth {
                        machine: 0,
                        samples: 40,
                        mean_residual_kelvin: 0.2,
                        std_residual_kelvin: 0.1,
                        ewma_residual_kelvin: 0.25,
                        peak_abs_ewma_kelvin: 0.3,
                        max_abs_residual_kelvin: 0.6,
                        drifted: false,
                    }],
                    drifted: false,
                    closest_margin_kelvin: 4.5,
                    closest_margin_at_seconds: 120.0,
                    worst_level: coolopt_sim::MarginLevel::Ok,
                    recommended_guard_kelvin: 0.4,
                },
                drift_demo: Some(HealthReport {
                    samples: 20,
                    drifted: true,
                    ..HealthReport::default()
                }),
            }),
        }
    }

    #[test]
    fn json_document_is_schema_stable() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"schema\":\"coolopt-telemetry-run-v1\""));
        assert!(json.contains("\"name\":\"unit\""));
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"metrics\":{\"schema\":\"coolopt-telemetry-v1\""));
        assert!(json.contains("\"replans\":3"));
        assert!(json.contains("\"computing_joules\":800.0"));
        assert!(json.contains("\"segments\":[{\"start_seconds\":0.0"));
        assert!(json.contains("\"propagators_built\":2"));
        assert!(json.contains("\"cache_hit_rate\":0.9"));
        assert!(json.contains("\"health\":{\"report\":{\"samples\":40"));
        assert!(json.contains("\"worst_level\":\"ok\""));
        assert!(json.contains("\"recommended_guard_kelvin\":0.4"));
        assert!(json.contains("\"drift_demo\":{\"samples\":20,\"drifted\":true"));
        assert!(json.contains("\"scenario\":{\"name\":\"two_zone_hetero\",\"sha256\":\"ab"));
        assert!(json.contains("\"multizone\":{\"zones\":2,\"machines\":14"));
        assert!(json.contains("\"per_zone\":{\"t_ac_celsius\":[18.0,14.5]"));
        assert!(json.contains("\"savings_fraction\":0.05"));
        assert!(json.contains("\"uniform\":{\"t_ac_celsius\":[16.0,16.0]"));
    }

    #[test]
    fn scenario_and_multizone_sections_default_to_null() {
        let report = RunReport::default();
        let json = report.to_json();
        assert!(json.contains("\"scenario\":null"));
        assert!(json.contains("\"multizone\":null"));
        assert!(!report.render_table().contains("scenario:"));
    }

    #[test]
    fn table_summarizes_scenario_and_multizone() {
        let table = sample().render_table();
        assert!(
            table.contains("scenario: two_zone_hetero (sha256 ab"),
            "{table}"
        );
        assert!(table.contains("multizone: 2 zones, 14 machines"), "{table}");
        assert!(table.contains("5.00 % saved"), "{table}");
    }

    #[test]
    fn health_section_renders_verdicts() {
        let table = sample().render_table();
        assert!(table.contains("health: healthy"), "{table}");
        assert!(table.contains("drift none"), "{table}");
        assert!(
            table.contains("drift demo: injected bias TRIPPED"),
            "{table}"
        );
        let mut report = sample();
        report.health = None;
        assert!(!report.render_table().contains("health:"));
        assert!(report.to_json().contains("\"health\":null"));
    }

    #[test]
    fn empty_sections_render_null() {
        let report = RunReport {
            name: "empty".to_string(),
            ..RunReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"trace\":null"));
        assert!(json.contains("\"replay\":null"));
    }

    #[test]
    fn non_finite_margin_is_null() {
        let mut report = sample();
        report.trace.as_mut().unwrap().min_margin_kelvin = f64::INFINITY;
        assert!(report.to_json().contains("\"min_margin_kelvin\":null"));
    }

    #[test]
    fn hit_rate_is_none_without_lookups() {
        let section = ReplaySection::default();
        assert_eq!(section.cache_hit_rate(), None);
        assert!(sample().replay.unwrap().cache_hit_rate().unwrap() > 0.89);
    }

    #[test]
    fn table_mentions_every_section() {
        let table = sample().render_table();
        assert!(table.contains("telemetry: unit"));
        assert!(table.contains("trace [#8]"));
        assert!(table.contains("replay [#8]"));
    }

    #[test]
    fn report_writes_to_disk() {
        let dir = std::env::temp_dir().join("coolopt_run_report_test");
        let path = sample().write_to(&dir).expect("temp dir is writable");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("coolopt-telemetry-run-v1"));
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir(dir);
    }
}
