//! The evaluation harness: regenerates every table and figure of the paper
//! against the simulated 20-machine testbed.
//!
//! Pipeline (mirroring the paper's §IV):
//!
//! 1. [`testbed::Testbed::build`] — construct the simulated rack and run the
//!    §IV-A profiling to obtain the fitted [`RoomModel`] and set-point
//!    calibration;
//! 2. [`harness::run_sweep`] — for each evaluation method and each total
//!    load, plan (via `coolopt-alloc`), apply the plan to the simulated
//!    room, settle, and measure total power through the instruments,
//!    verifying the CPU-temperature and throughput constraints;
//! 3. [`figures`] — slice one sweep into the paper's Figures 5–10, run the
//!    dedicated staircase experiments behind Figures 2–3, and render
//!    Table I / Figure 4;
//! 4. [`report`] — ASCII and CSV rendering;
//! 5. [`savings`] — the headline numbers (average/maximum savings of the
//!    optimal method over the best baseline).
//!
//! Beyond the paper, [`runtime`] replans online over load traces on the
//! numeric substrate, and [`replay`] replays the same controller on the
//! analytic linear-RC transient model (exact-step propagator) for fast
//! design sweeps.
//!
//! With the `parallel` feature, [`harness::run_sweep`] and the ablation
//! studies fan independent scenarios across scoped threads with
//! deterministic ordering — output is bit-identical to the serial run.
//!
//! [`RoomModel`]: coolopt_model::RoomModel

#![warn(missing_docs)]

pub mod ablations;
pub mod dashboard;
pub mod figures;
pub mod harness;
pub mod multizone;
pub mod replay;
pub mod report;
pub mod run_report;
pub mod runtime;
pub mod savings;
pub mod testbed;

pub use dashboard::{energy_chart, plant_charts, write_dashboard};
pub use figures::{FigureData, Series};
#[cfg(feature = "parallel")]
pub use harness::run_sweep_with_workers;
pub use harness::{
    run_method, run_method_with, run_sweep, run_sweep_serial, scenario_planner, MethodRun, Sweep,
    SweepOptions,
};
pub use multizone::{
    render_multizone, run_multizone, MultiZoneError, MultiZoneOptions, MultiZoneOutcome,
    VariantOutcome,
};
pub use replay::{replay_trace, replay_trace_with, ReplayEngine, ReplayOptions, ReplayOutcome};
pub use report::{render_figure, to_csv};
pub use run_report::{
    export_flight_dropped, HealthSection, MultiZoneSection, ReplaySection, RunReport,
    ScenarioSection, TraceSection, VariantSection, RUN_REPORT_SCHEMA,
};
pub use savings::{savings_summary, SavingsSummary};
pub use testbed::{Testbed, TestbedError};
