//! Headline savings numbers.
//!
//! The paper's summary: the holistic optimum (#8) "saves 7 % of the total
//! energy consumption on average over all load scenarios and is able to save
//! up to 18 % in the best case compared to the next best baseline, method
//! #7".

use crate::harness::Sweep;
use coolopt_alloc::Method;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Savings of one method relative to a baseline, across a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsSummary {
    /// Mean relative savings over shared load points (fraction, 0.07 = 7 %).
    pub mean: f64,
    /// Best-case relative savings.
    pub max: f64,
    /// Worst-case relative savings (can be negative).
    pub min: f64,
    /// Load percentage where the best case occurred.
    pub max_at_load: f64,
    /// Number of load points compared.
    pub points: usize,
}

impl fmt::Display for SavingsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "avg {:.1} %, max {:.1} % (at {:.0} % load), min {:.1} % over {} points",
            self.mean * 100.0,
            self.max * 100.0,
            self.max_at_load,
            self.min * 100.0,
            self.points
        )
    }
}

/// Relative savings of `candidate` over `baseline` at every load both were
/// swept at. Returns `None` when they share no load points.
pub fn savings_summary(
    sweep: &Sweep,
    candidate: Method,
    baseline: Method,
) -> Option<SavingsSummary> {
    let cand = sweep.series(candidate);
    let base = sweep.series(baseline);
    let mut savings = Vec::new();
    for &(load, cw) in &cand {
        if let Some(&(_, bw)) = base.iter().find(|&&(l, _)| (l - load).abs() < 1e-9) {
            if bw > 0.0 {
                savings.push((load, (bw - cw) / bw));
            }
        }
    }
    if savings.is_empty() {
        return None;
    }
    let mean = savings.iter().map(|&(_, s)| s).sum::<f64>() / savings.len() as f64;
    let (max_at_load, max) = savings
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite savings"))
        .expect("non-empty");
    let min = savings
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    Some(SavingsSummary {
        mean,
        max,
        min,
        max_at_load,
        points: savings.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_sweep, SweepOptions};
    use crate::testbed::Testbed;
    use coolopt_units::Seconds;

    #[test]
    fn optimal_saves_over_bottom_up_on_a_small_rack() {
        let mut tb = Testbed::build_sized(4, 23).unwrap();
        let options = SweepOptions {
            load_percents: vec![25.0, 50.0, 75.0],
            settle_max: Seconds::new(3000.0),
            window: Seconds::new(40.0),
            ..SweepOptions::default()
        };
        let sweep = run_sweep(
            &mut tb,
            &[Method::numbered(7), Method::numbered(8)],
            &options,
        );
        let s = savings_summary(&sweep, Method::numbered(8), Method::numbered(7)).unwrap();
        assert_eq!(s.points, 3);
        assert!(
            s.mean > -0.02,
            "optimal should not lose clearly to bottom-up: {s}"
        );
        assert!(s.max >= s.mean && s.mean >= s.min);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn disjoint_methods_yield_none() {
        let sweep = Sweep::default();
        assert!(savings_summary(&sweep, Method::numbered(8), Method::numbered(7)).is_none());
    }
}
