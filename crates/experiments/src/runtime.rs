//! Online replanning over a time-varying load trace — an extension beyond
//! the paper.
//!
//! The paper restricts itself to steady batch loads and says so: *"servers
//! are never at steady state [under dynamic load], and our steady state
//! analysis is not appropriate."* This module quantifies that caveat: a
//! controller re-solves the (steady-state-optimal) allocation whenever the
//! requested load changes or a replanning timer fires, applies it with
//! realistic boot transients, and accounts for everything the steady-state
//! analysis hides — energy during transients, throughput lost while
//! machines boot, and any temperature excursions.

use crate::testbed::Testbed;
use coolopt_alloc::{AllocationPlan, Method, Planner, PolicyError};
use coolopt_sim::{HealthConfig, HealthReport, ModelHealthMonitor, SoaRecorder, TimeSeries};
use coolopt_telemetry as telemetry;
use coolopt_units::{Joules, Seconds, TempDelta, Watts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One step of a load trace: from `at` onwards, the room is asked to serve
/// `load` (absolute, in machine-capacities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Time the demand takes effect.
    pub at: Seconds,
    /// Requested total load.
    pub load: f64,
}

/// A diurnal-looking test trace: load swings sinusoidally between
/// `min_frac` and `max_frac` of rack capacity over `duration`, quantized
/// into `steps` plateaus (batch arrival waves).
///
/// # Panics
///
/// Panics when `steps` is zero, either fraction is non-finite or outside
/// `[0, 1]`, `min_frac > max_frac`, or `duration` is not positive and
/// finite.
pub fn sinusoidal_trace(
    machines: usize,
    min_frac: f64,
    max_frac: f64,
    duration: Seconds,
    steps: usize,
) -> Vec<TracePoint> {
    assert!(steps > 0, "need at least one plateau");
    assert!(
        min_frac.is_finite() && max_frac.is_finite(),
        "fractions must be finite, got min {min_frac}, max {max_frac}"
    );
    assert!(
        min_frac <= max_frac,
        "min_frac {min_frac} must not exceed max_frac {max_frac}"
    );
    assert!(
        0.0 <= min_frac && max_frac <= 1.0,
        "fractions must satisfy 0 ≤ min ≤ max ≤ 1"
    );
    let secs = duration.as_secs_f64();
    assert!(
        secs.is_finite() && secs > 0.0,
        "duration must be positive and finite, got {secs} s"
    );
    (0..steps)
        .map(|k| {
            let phase = k as f64 / steps as f64 * std::f64::consts::TAU;
            let frac = min_frac + (max_frac - min_frac) * 0.5 * (1.0 - phase.cos());
            TracePoint {
                at: duration * (k as f64 / steps as f64),
                load: frac * machines as f64,
            }
        })
        .collect()
}

/// Controller knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOptions {
    /// Replan at least this often, even if demand has not changed (tracks
    /// drift).
    pub replan_interval: Seconds,
    /// Guard band for the inner planner.
    pub guard: TempDelta,
    /// Record the power series at this granularity.
    pub record_every: Seconds,
    /// Model-health watchdog tuning (residual drift detection and
    /// `T_max`-margin monitoring). Residual samples are taken at the
    /// [`record_every`](RuntimeOptions::record_every) cadence once the
    /// plant has settled after a plan application.
    pub health: HealthConfig,
    /// When set, the run also streams plant series into the process-global
    /// [time-series store](coolopt_telemetry::tsdb) at the
    /// [`record_every`](RuntimeOptions::record_every) cadence:
    /// `{prefix}.computing_watts`, `{prefix}.cooling_watts` and
    /// `{prefix}.margin_kelvin`, stamped with *simulation* milliseconds
    /// (not wall time). A no-op without the `telemetry` feature.
    pub tsdb_prefix: Option<String>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            replan_interval: Seconds::new(900.0),
            guard: coolopt_alloc::plan::DEFAULT_GUARD,
            record_every: Seconds::new(10.0),
            health: HealthConfig::default(),
            tsdb_prefix: None,
        }
    }
}

/// Energy split of one demand plateau of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentEnergy {
    /// Plateau start (trace-relative).
    pub start: Seconds,
    /// Demand the plateau requested.
    pub load: f64,
    /// Computing (server) energy over the plateau.
    pub computing: Joules,
    /// Cooling (CRAC) energy over the plateau.
    pub cooling: Joules,
}

/// What a trace run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceOutcome {
    /// Total electrical energy over the trace.
    pub energy: Joules,
    /// Computing (server) share of [`energy`](TraceOutcome::energy).
    pub computing_energy: Joules,
    /// Cooling (CRAC) share of [`energy`](TraceOutcome::energy).
    pub cooling_energy: Joules,
    /// Per-plateau energy split, one entry per trace point (in trace
    /// order; plateaus the run never reached report zero energy).
    pub segments: Vec<SegmentEnergy>,
    /// Trace duration.
    pub duration: Seconds,
    /// Mean total power.
    pub mean_power: Watts,
    /// Seconds during which some CPU exceeded the *true* `T_max`.
    pub violation_seconds: f64,
    /// Smallest observed distance (K) between the hottest CPU and the true
    /// `T_max` — the run's worst-case guard-band margin. Negative when a
    /// violation occurred; infinite if the room has no servers.
    pub min_margin_kelvin: f64,
    /// Load-seconds served divided by load-seconds requested (boot
    /// transients and infeasible plans lose throughput).
    pub served_fraction: f64,
    /// Number of plans applied.
    pub replans: usize,
    /// Number of planning attempts that failed (previous plan kept).
    pub plan_failures: usize,
    /// Recorded total-power series.
    pub power_series: TimeSeries,
    /// Model-health watchdog verdict (`None` when telemetry is compiled
    /// out — the no-op monitor observes nothing).
    #[serde(default)]
    pub health: Option<HealthReport>,
}

/// Drives the testbed's room through `trace` under `method`, replanning
/// online.
///
/// # Errors
///
/// Returns [`PolicyError`] only if the *initial* plan fails; later failures
/// keep the previous plan running and are counted in
/// [`TraceOutcome::plan_failures`].
///
/// # Panics
///
/// Panics if `trace` is empty or not time-sorted.
pub fn run_load_trace(
    testbed: &mut Testbed,
    method: Method,
    trace: &[TracePoint],
    total: Seconds,
    options: &RuntimeOptions,
) -> Result<TraceOutcome, PolicyError> {
    let planner = Planner::with_guard(
        &testbed.profile.model,
        &testbed.profile.cooling.set_points,
        options.guard,
    );
    run_load_trace_with(&planner, testbed, method, trace, total, options)
}

/// Like [`run_load_trace`], but reuses a caller-owned planner so several
/// trace runs (e.g. one per method in an ablation) share one memoized
/// solver engine. `options.guard` is ignored; the planner's own guard
/// applies.
///
/// # Errors
///
/// Returns [`PolicyError`] only if the *initial* plan fails, as with
/// [`run_load_trace`].
///
/// # Panics
///
/// Panics if `trace` is empty or not time-sorted.
pub fn run_load_trace_with(
    planner: &Planner,
    testbed: &mut Testbed,
    method: Method,
    trace: &[TracePoint],
    total: Seconds,
    options: &RuntimeOptions,
) -> Result<TraceOutcome, PolicyError> {
    assert!(!trace.is_empty(), "trace must have at least one point");
    assert!(
        trace.windows(2).all(|w| w[0].at <= w[1].at),
        "trace must be time-sorted"
    );

    let t_max = testbed.profile.model.t_max();
    let model = &testbed.profile.model;
    let machines = model.len();
    let mut trace_span = telemetry::span("trace_run")
        .attr("machines", machines)
        .attr("plateaus", trace.len())
        .record_into("coolopt_trace_run_seconds");

    // Every plan the controller can ever request is a plan for one of the
    // trace's demand plateaus, and plans are deterministic — so solve the
    // distinct demands up front in one batched query (the index is walked
    // once for the whole trace) and replay from the cache. Timer-driven
    // replans of an unchanged demand hit the same entry.
    let plan_cache: HashMap<u64, Result<AllocationPlan, PolicyError>> = {
        let mut distinct: Vec<f64> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for point in trace {
            if seen.insert(point.load.to_bits()) {
                distinct.push(point.load);
            }
        }
        let answers = planner.plan_batch(method, &distinct);
        distinct.iter().map(|l| l.to_bits()).zip(answers).collect()
    };
    let plan_for = |demand: f64| -> Result<AllocationPlan, PolicyError> {
        plan_cache
            .get(&demand.to_bits())
            .cloned()
            .unwrap_or_else(|| planner.plan(method, demand))
    };

    let apply = |room: &mut coolopt_room::MachineRoom, plan: &coolopt_alloc::AllocationPlan| {
        room.command_on_set(&plan.on);
        room.set_loads(&plan.loads)
            .expect("plans carry valid loads");
        room.set_set_point(plan.set_point);
    };

    // Eq. 8 predicts the steady-state CPU temperature each applied plan
    // commits to; the watchdog compares those predictions against the
    // simulated plant once it has settled. Predictions are constant per
    // plan, so they are recomputed only on application (NaN for machines
    // the plan leaves off — Eq. 8 does not describe a powered-down box).
    let predict = |plan: &AllocationPlan| -> Vec<f64> {
        let mut p = vec![f64::NAN; machines];
        for &i in &plan.on {
            p[i] = model
                .predict_cpu_temp(i, plan.loads[i], plan.t_ac_target)
                .as_kelvin();
        }
        p
    };
    let mut health = ModelHealthMonitor::new(machines, options.health);
    let settle = health.settle();

    let mut replans = 0usize;
    let mut plan_failures = 0usize;
    let mut current = {
        let _replan_span = telemetry::span("replan")
            .attr("at_seconds", 0.0)
            .attr("demand", trace[0].load);
        let plan = plan_for(trace[0].load)?;
        apply(&mut testbed.room, &plan);
        plan
    };
    let mut predicted = predict(&current);
    let mut last_apply = Seconds::ZERO;
    replans += 1;

    let dt = testbed.room.config().dt;
    let steps = (total.as_secs_f64() / dt.as_secs_f64()).ceil() as usize;
    // The room's clock keeps running across experiments (profiling already
    // advanced it); the trace runs on time-since-start.
    let t0 = testbed.room.now();
    let mut trace_idx = 0usize;
    let mut next_replan = options.replan_interval;
    let mut energy = Joules::ZERO;
    let mut computing_energy = Joules::ZERO;
    let mut cooling_energy = Joules::ZERO;
    let mut seg_split: Vec<(Joules, Joules)> = vec![(Joules::ZERO, Joules::ZERO); trace.len()];
    let mut served = 0.0;
    let mut requested = 0.0;
    let mut violation_seconds = 0.0;
    let mut min_margin_kelvin = f64::INFINITY;
    // Power is recorded into a preallocated SoA column with decimation:
    // every step offers a sample, the recorder keeps one per
    // `record_every` without growing or branching on wall-clock time.
    let every = (options.record_every.as_secs_f64() / dt.as_secs_f64())
        .round()
        .max(1.0) as usize;
    let mut recorder = SoaRecorder::new(1, every, steps / every + 1);
    // One span covers each run of uninterrupted sim steps between replans,
    // so the trace shows plan → replan → step causality without emitting a
    // record per step (which would flush everything else out of the ring).
    let mut window: Option<telemetry::Span> = None;
    let mut window_steps: u64 = 0;
    let close_window = |window: &mut Option<telemetry::Span>, window_steps: &mut u64| {
        if let Some(mut w) = window.take() {
            w.set_attr("steps", *window_steps);
        }
        *window_steps = 0;
    };

    for k in 0..steps {
        let now = testbed.room.now() - t0;

        // Demand changes take effect immediately and force a replan.
        let mut demand_changed = false;
        while trace_idx + 1 < trace.len()
            && trace[trace_idx + 1].at.as_secs_f64() <= now.as_secs_f64()
        {
            trace_idx += 1;
            demand_changed = true;
        }
        let demand = trace[trace_idx].load;

        if demand_changed || now.as_secs_f64() >= next_replan.as_secs_f64() {
            close_window(&mut window, &mut window_steps);
            let mut replan_span = telemetry::span("replan")
                .attr("at_seconds", now.as_secs_f64())
                .attr("demand", demand);
            match plan_for(demand) {
                Ok(plan) => {
                    apply(&mut testbed.room, &plan);
                    current = plan;
                    predicted = predict(&current);
                    last_apply = now;
                    replans += 1;
                    replan_span.set_attr("ok", true);
                }
                Err(_) => {
                    plan_failures += 1;
                    replan_span.set_attr("ok", false);
                }
            }
            next_replan = now + options.replan_interval;
        }
        let _ = &current; // current is retained for inspection/debugging

        if window.is_none() {
            window = Some(telemetry::span("sim_steps").attr("at_seconds", now.as_secs_f64()));
        }
        testbed.room.step();
        window_steps += 1;

        let p = testbed.room.total_power();
        let pc = testbed.room.computing_power();
        let pk = testbed.room.cooling_power();
        energy += p * dt;
        computing_energy += pc * dt;
        cooling_energy += pk * dt;
        seg_split[trace_idx].0 += pc * dt;
        seg_split[trace_idx].1 += pk * dt;
        served += testbed
            .room
            .servers()
            .iter()
            .map(|s| s.effective_load())
            .sum::<f64>()
            * dt.as_secs_f64();
        requested += demand * dt.as_secs_f64();
        let hottest = testbed
            .room
            .servers()
            .iter()
            .map(|s| s.cpu_temp().as_kelvin())
            .fold(f64::NEG_INFINITY, f64::max);
        if hottest > t_max.as_kelvin() {
            violation_seconds += dt.as_secs_f64();
        }
        min_margin_kelvin = min_margin_kelvin.min(t_max.as_kelvin() - hottest);
        // The watchdog skips the settle window after each plan
        // application: the margin monitor would otherwise escalate on the
        // inherited startup state / replan transients (min_margin_kelvin
        // above still records those), and Eq. 8 predicts steady state, so
        // unsettled residuals would false-trip the drift detector.
        let settled = (now - last_apply).as_secs_f64() >= settle.as_secs_f64();
        if settled {
            health.observe_margin(now, t_max.as_kelvin() - hottest);
        }
        // Residual samples additionally follow the recorder cadence.
        if telemetry::metrics_enabled() && settled && k % every == 0 {
            for (i, s) in testbed.room.servers().iter().enumerate() {
                let pred = predicted[i];
                if s.is_on() && pred.is_finite() {
                    health.observe_residual(i, pred - s.cpu_temp().as_kelvin());
                }
            }
        }
        // The time-series store gets the energy split and the safety
        // margin at the same cadence, on the simulation clock.
        if telemetry::metrics_enabled() && k % every == 0 {
            if let Some(prefix) = &options.tsdb_prefix {
                let db = telemetry::tsdb();
                let sim_ms = (now.as_secs_f64() * 1000.0) as i64;
                db.append(&format!("{prefix}.computing_watts"), sim_ms, pc.as_watts());
                db.append(&format!("{prefix}.cooling_watts"), sim_ms, pk.as_watts());
                db.append(
                    &format!("{prefix}.margin_kelvin"),
                    sim_ms,
                    t_max.as_kelvin() - hottest,
                );
            }
        }
        recorder.offer(now, &[p.as_watts()]);
    }
    close_window(&mut window, &mut window_steps);
    trace_span.set_attr("replans", replans);

    telemetry::counter("coolopt_replans_total").add(replans as u64);
    telemetry::counter("coolopt_replan_failures_total").add(plan_failures as u64);
    telemetry::gauge("coolopt_trace_margin_min_kelvin").set_min(min_margin_kelvin);
    telemetry::gauge("coolopt_trace_computing_joules").add(computing_energy.as_joules());
    telemetry::gauge("coolopt_trace_cooling_joules").add(cooling_energy.as_joules());

    let duration = Seconds::new(steps as f64 * dt.as_secs_f64());
    Ok(TraceOutcome {
        energy,
        computing_energy,
        cooling_energy,
        segments: trace
            .iter()
            .zip(seg_split)
            .map(|(point, (computing, cooling))| SegmentEnergy {
                start: point.at,
                load: point.load,
                computing,
                cooling,
            })
            .collect(),
        duration,
        mean_power: energy / duration,
        violation_seconds,
        min_margin_kelvin,
        served_fraction: if requested > 0.0 {
            served / requested
        } else {
            1.0
        },
        replans,
        plan_failures,
        power_series: recorder.to_series(0),
        health: health.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinusoidal_trace_spans_the_requested_band() {
        let trace = sinusoidal_trace(10, 0.2, 0.8, Seconds::new(3600.0), 12);
        assert_eq!(trace.len(), 12);
        let min = trace.iter().map(|p| p.load).fold(f64::INFINITY, f64::min);
        let max = trace
            .iter()
            .map(|p| p.load)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min >= 2.0 - 1e-9 && max <= 8.0 + 1e-9);
        assert!(max > 7.5, "peak should approach the requested maximum");
        assert!(trace.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn sinusoidal_trace_hits_both_boundary_plateaus() {
        // Even step counts place plateaus exactly at phase 0 (minimum) and
        // phase π (maximum).
        let trace = sinusoidal_trace(8, 0.25, 0.75, Seconds::new(1200.0), 6);
        assert!((trace[0].load - 0.25 * 8.0).abs() < 1e-12, "{trace:?}");
        assert!((trace[3].load - 0.75 * 8.0).abs() < 1e-12, "{trace:?}");
        // A degenerate band is a constant trace, not an error.
        let flat = sinusoidal_trace(8, 0.5, 0.5, Seconds::new(1200.0), 4);
        assert!(flat.iter().all(|p| (p.load - 4.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "min_frac")]
    fn sinusoidal_trace_rejects_inverted_band() {
        sinusoidal_trace(8, 0.8, 0.2, Seconds::new(100.0), 4);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn sinusoidal_trace_rejects_nan_fraction() {
        sinusoidal_trace(8, f64::NAN, 0.5, Seconds::new(100.0), 4);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn sinusoidal_trace_rejects_nonpositive_duration() {
        sinusoidal_trace(8, 0.2, 0.8, Seconds::new(0.0), 4);
    }

    #[test]
    fn replanning_controller_tracks_a_varying_load() {
        let mut tb = Testbed::build_sized(4, 37).unwrap();
        let trace = vec![
            TracePoint {
                at: Seconds::ZERO,
                load: 1.0,
            },
            TracePoint {
                at: Seconds::new(2500.0),
                load: 3.0,
            },
        ];
        let outcome = run_load_trace(
            &mut tb,
            Method::numbered(8),
            &trace,
            Seconds::new(5000.0),
            &RuntimeOptions::default(),
        )
        .unwrap();
        assert!(outcome.replans >= 2, "must replan at the demand step");
        assert_eq!(outcome.plan_failures, 0);
        // Some throughput is inevitably lost to boot transients, but the
        // bulk must be served.
        assert!(
            outcome.served_fraction > 0.9,
            "served only {:.1} %",
            outcome.served_fraction * 100.0
        );
        assert!(outcome.energy.as_joules() > 0.0);
        assert!(!outcome.power_series.is_empty());
        // Power after the step up must exceed power before it.
        let late = outcome.power_series.after(Seconds::new(4000.0));
        let before = outcome.power_series.after(Seconds::new(1500.0));
        let _ = before;
        let late_mean = late.stats().unwrap().mean;
        let early_series: Vec<f64> = outcome
            .power_series
            .iter()
            .filter(|(t, _)| t.as_secs_f64() > 1500.0 && t.as_secs_f64() < 2400.0)
            .map(|(_, v)| v)
            .collect();
        let early_mean = early_series.iter().sum::<f64>() / early_series.len() as f64;
        assert!(
            late_mean > early_mean + 50.0,
            "power should rise after the demand step: {early_mean} → {late_mean}"
        );
    }
}
