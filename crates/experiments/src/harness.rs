//! Running one evaluation method on the simulated room, and sweeping many.

use crate::testbed::Testbed;
use coolopt_alloc::{AllocationPlan, Method, Planner, PolicyError};
use coolopt_room::SteadyMeasurement;
use coolopt_telemetry as telemetry;
use coolopt_units::{Seconds, TempDelta, Watts};
use coolopt_workload::{Capacity, Document, LoadBalancer, LoadVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Execution knobs of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Load points as percentages of rack capacity (paper: 10–100 %).
    pub load_percents: Vec<f64>,
    /// Settling budget per run.
    pub settle_max: Seconds,
    /// Measurement window per run.
    pub window: Seconds,
    /// Tolerance above `T_max` before a run is flagged (sensor noise and
    /// quantization make exact comparisons meaningless).
    pub temp_margin: TempDelta,
    /// Guard band the planner keeps below `T_max` (absorbs fitted-model
    /// error; the ablation study sweeps it).
    pub guard: TempDelta,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            load_percents: (1..=10).map(|k| k as f64 * 10.0).collect(),
            settle_max: Seconds::new(4000.0),
            window: Seconds::new(60.0),
            temp_margin: TempDelta::from_kelvin(2.0),
            guard: coolopt_alloc::plan::DEFAULT_GUARD,
        }
    }
}

/// The outcome of running one method at one load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// The plan that was applied.
    pub plan: AllocationPlan,
    /// Load percentage of this run.
    pub load_percent: f64,
    /// Steady-state measurement through the instruments.
    pub measurement: SteadyMeasurement,
    /// `true` when no CPU exceeded `T_max` (within the margin).
    pub temps_ok: bool,
    /// `true` when the dispatcher realizes the planned shares (throughput
    /// constraint, paper: "application throughput was not affected").
    pub throughput_ok: bool,
}

impl MethodRun {
    /// Measured total power (the paper's y-axis).
    pub fn total_power(&self) -> Watts {
        self.measurement.total_power
    }
}

/// The planner a scenario should build **once** and reuse for every run
/// against the same testbed: the planner publishes its solver engine as an
/// `Arc`-shared snapshot, so the consolidation index is built here — once,
/// eagerly — and every later load point, method, or *worker-thread clone*
/// queries the same published snapshot with no rebuild.
pub fn scenario_planner(testbed: &Testbed, options: &SweepOptions) -> Planner {
    let planner = Planner::with_guard(
        &testbed.profile.model,
        &testbed.profile.cooling.set_points,
        options.guard,
    );
    // Warm the engine before the planner is cloned across sweep workers; a
    // degenerate model surfaces as a planning error later, exactly as the
    // lazy path would report it.
    let _ = planner.warm_engine();
    planner
}

/// Applies `method` at `load_percent` to the testbed's room and measures it.
///
/// Convenience wrapper that builds a throwaway [`Planner`]; sweeps and
/// studies that run many loads should build one with [`scenario_planner`]
/// and call [`run_method_with`] instead.
///
/// # Errors
///
/// Returns [`PolicyError`] when the method cannot plan this load.
pub fn run_method(
    testbed: &mut Testbed,
    method: Method,
    load_percent: f64,
    options: &SweepOptions,
) -> Result<MethodRun, PolicyError> {
    let planner = scenario_planner(testbed, options);
    run_method_with(&planner, testbed, method, load_percent, options)
}

/// Like [`run_method`], but reuses a caller-owned planner (and therefore
/// its memoized solver engine) instead of building one per run.
///
/// # Errors
///
/// Returns [`PolicyError`] when the method cannot plan this load.
pub fn run_method_with(
    planner: &Planner,
    testbed: &mut Testbed,
    method: Method,
    load_percent: f64,
    options: &SweepOptions,
) -> Result<MethodRun, PolicyError> {
    let _span = telemetry::span("method_run")
        .attr("load_percent", load_percent)
        .record_into("coolopt_method_run_seconds");
    telemetry::counter("coolopt_method_runs_total").inc();
    let plan = planner.plan(method, testbed.load_from_percent(load_percent))?;

    let room = &mut testbed.room;
    room.apply_on_set(&plan.on);
    room.set_loads(&plan.loads)
        .expect("plans carry valid loads");
    room.set_set_point(plan.set_point);
    let measurement = SteadyMeasurement::collect(room, options.settle_max, options.window);

    let t_limit = testbed.profile.model.t_max() + options.temp_margin;
    let temps_ok = measurement.max_cpu_temp <= t_limit;
    let throughput_ok = verify_throughput(&plan);

    Ok(MethodRun {
        plan,
        load_percent,
        measurement,
        temps_ok,
        throughput_ok,
    })
}

/// Checks that a weighted dispatcher realizes the plan's shares: after
/// dispatching a sizable batch, every machine's share of documents matches
/// its planned share of the load within 2 %.
fn verify_throughput(plan: &AllocationPlan) -> bool {
    let total = plan.total_load();
    if total <= 0.0 {
        return true; // nothing to serve
    }
    let loads = match LoadVector::new(plan.loads.clone()) {
        Ok(v) => v,
        Err(_) => return false,
    };
    let capacities = vec![Capacity::new(100.0); plan.loads.len()];
    let mut balancer = match LoadBalancer::new(&loads, &capacities) {
        Ok(b) => b,
        Err(_) => return false,
    };
    let doc = Document {
        id: 0,
        html: String::new(),
    };
    let n_docs = 5000;
    for _ in 0..n_docs {
        if balancer.dispatch(&doc).is_none() {
            return false;
        }
    }
    let stats = balancer.stats();
    plan.loads
        .iter()
        .enumerate()
        .all(|(i, &l)| (stats.share(i) - l / total).abs() < 0.02)
}

/// A key for looking up a run: method + load in tenths of a percent.
type RunKey = (Method, u32);

fn key(method: Method, load_percent: f64) -> RunKey {
    (method, (load_percent * 10.0).round() as u32)
}

/// All runs of an evaluation sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    runs: BTreeMap<u32, Vec<(Method, MethodRun)>>,
}

impl Sweep {
    /// The run of `method` at `load_percent`, if it was swept.
    pub fn get(&self, method: Method, load_percent: f64) -> Option<&MethodRun> {
        let (m, l) = key(method, load_percent);
        self.runs
            .get(&l)?
            .iter()
            .find(|(method, _)| *method == m)
            .map(|(_, run)| run)
    }

    /// The series (load %, total watts) of one method, load-ascending.
    pub fn series(&self, method: Method) -> Vec<(f64, f64)> {
        self.runs
            .values()
            .filter_map(|row| {
                row.iter()
                    .find(|(m, _)| *m == method)
                    .map(|(_, run)| (run.load_percent, run.total_power().as_watts()))
            })
            .collect()
    }

    /// Mean measured power of one method over all swept loads.
    pub fn mean_power(&self, method: Method) -> Option<Watts> {
        let series = self.series(method);
        if series.is_empty() {
            return None;
        }
        Some(Watts::new(
            series.iter().map(|(_, w)| w).sum::<f64>() / series.len() as f64,
        ))
    }

    /// Every run, for auditing.
    pub fn iter(&self) -> impl Iterator<Item = &MethodRun> {
        self.runs.values().flatten().map(|(_, run)| run)
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.runs.values().map(Vec::len).sum()
    }

    /// `true` when the sweep holds no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Records a run (used by custom sweeps, e.g. the ablation studies).
    pub fn insert(&mut self, method: Method, load_percent: f64, run: MethodRun) {
        let (m, l) = key(method, load_percent);
        self.runs.entry(l).or_default().push((m, run));
    }
}

/// Maps `f` over owned `items`, preserving order.
///
/// With the `parallel` feature, contiguous item chunks run on
/// `std::thread::scope` workers and the per-chunk results are concatenated
/// back in item order, so the output is *identical* to the serial map —
/// same elements, same positions. Without the feature this is a plain
/// serial map.
pub(crate) fn par_map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        par_map_ordered_with(items, f, workers)
    }
    #[cfg(not(feature = "parallel"))]
    {
        items.into_iter().map(f).collect()
    }
}

/// [`par_map_ordered`] with an explicit worker count; `workers <= 1` runs
/// serially. Exposed separately so the equivalence tests can force the
/// threaded path even on single-CPU hosts.
#[cfg(feature = "parallel")]
pub(crate) fn par_map_ordered_with<T, R, F>(items: Vec<T>, f: F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(workers);
    let mut items = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    // Split front-to-back so chunk order equals item order.
    while !items.is_empty() {
        let take = chunk_len.min(items.len());
        let rest = items.split_off(take);
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("sweep worker panicked"));
        }
    });
    out
}

/// The scenario grid of a sweep, load-major (matching report ordering).
fn sweep_grid(methods: &[Method], options: &SweepOptions) -> Vec<(Method, f64)> {
    options
        .load_percents
        .iter()
        .flat_map(|&percent| methods.iter().map(move |&method| (method, percent)))
        .collect()
}

fn collect_sweep(grid: &[(Method, f64)], results: Vec<Option<MethodRun>>) -> Sweep {
    let mut sweep = Sweep::default();
    for (&(method, percent), run) in grid.iter().zip(results) {
        if let Some(run) = run {
            sweep.insert(method, percent, run);
        }
    }
    sweep
}

/// Runs every `(method, load)` combination on the testbed.
///
/// Each scenario runs on its own clone of the testbed's *entry* state, so
/// scenarios are independent of one another and of execution order; with
/// the `parallel` feature they fan out across scoped threads (each clone
/// carries its own simulation scratch) and the result is bit-identical to
/// [`run_sweep_serial`].
///
/// Methods that cannot plan a combination (e.g. infeasible corner) are
/// skipped rather than failing the sweep; [`Sweep::get`] then returns
/// `None` for them.
pub fn run_sweep(testbed: &mut Testbed, methods: &[Method], options: &SweepOptions) -> Sweep {
    let _span = telemetry::span("sweep")
        .attr("methods", methods.len())
        .record_into("coolopt_sweep_seconds");
    // Scenario spans on worker threads parent on the sweep explicitly —
    // the thread-local stack does not cross threads.
    let sweep_id = _span.id();
    let planner = scenario_planner(testbed, options);
    let grid = sweep_grid(methods, options);
    let scenarios: Vec<(Method, f64, Testbed)> =
        grid.iter().map(|&(m, p)| (m, p, testbed.clone())).collect();
    let results = par_map_ordered(scenarios, |(method, percent, mut tb)| {
        let _scenario = telemetry::span_child_of("sweep_scenario", sweep_id);
        run_method_with(&planner, &mut tb, method, percent, options).ok()
    });
    let sweep = collect_sweep(&grid, results);
    telemetry::debug!(
        "harness",
        "sweep finished",
        scenarios = grid.len(),
        completed = sweep.len(),
    );
    sweep
}

/// [`run_sweep`] with an explicit worker count (the public entry point uses
/// the host's available parallelism). Lets tests force the scoped-thread
/// path on hosts where `available_parallelism()` is 1.
#[cfg(feature = "parallel")]
pub fn run_sweep_with_workers(
    testbed: &mut Testbed,
    methods: &[Method],
    options: &SweepOptions,
    workers: usize,
) -> Sweep {
    let planner = scenario_planner(testbed, options);
    let grid = sweep_grid(methods, options);
    let scenarios: Vec<(Method, f64, Testbed)> =
        grid.iter().map(|&(m, p)| (m, p, testbed.clone())).collect();
    let results = par_map_ordered_with(
        scenarios,
        |(method, percent, mut tb)| {
            run_method_with(&planner, &mut tb, method, percent, options).ok()
        },
        workers,
    );
    collect_sweep(&grid, results)
}

/// The serial oracle for [`run_sweep`]: same clone-per-scenario structure,
/// strictly sequential execution. Used by the equivalence tests (parallel
/// output must be bit-identical) and available for debugging.
pub fn run_sweep_serial(
    testbed: &mut Testbed,
    methods: &[Method],
    options: &SweepOptions,
) -> Sweep {
    let planner = scenario_planner(testbed, options);
    let grid = sweep_grid(methods, options);
    let results = grid
        .iter()
        .map(|&(method, percent)| {
            let mut tb = testbed.clone();
            run_method_with(&planner, &mut tb, method, percent, options).ok()
        })
        .collect();
    collect_sweep(&grid, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> SweepOptions {
        SweepOptions {
            load_percents: vec![25.0, 75.0],
            settle_max: Seconds::new(3000.0),
            window: Seconds::new(40.0),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn run_method_respects_constraints_and_measures() {
        let mut tb = Testbed::build_sized(4, 11).unwrap();
        let run = run_method(&mut tb, Method::numbered(8), 50.0, &quick_options()).unwrap();
        assert!(run.measurement.settled, "run did not settle");
        assert!(run.temps_ok, "max cpu {}", run.measurement.max_cpu_temp);
        assert!(run.throughput_ok);
        assert!(run.total_power().as_watts() > 500.0);
        assert!((run.plan.total_load() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn par_map_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..23).collect();
        let out = par_map_ordered(items, |i| i * 2);
        assert_eq!(out, (0..23).map(|i| i * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = par_map_ordered(Vec::new(), |i: usize| i);
        assert!(empty.is_empty());
    }

    /// Acceptance criterion of the parallel-sweep work: fanning scenarios
    /// across threads must not change a single bit of the report input.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let mut tb = Testbed::build_sized(4, 13).unwrap();
        let methods = [Method::numbered(1), Method::numbered(8)];
        let options = quick_options();
        let serial = run_sweep_serial(&mut tb, &methods, &options);
        // The auto-sized path (may fall back to serial on single-CPU
        // hosts)…
        assert_eq!(run_sweep(&mut tb, &methods, &options), serial);
        // …and the scoped-thread path forced on, one scenario per chunk.
        let forced = run_sweep_with_workers(&mut tb, &methods, &options, 4);
        assert_eq!(forced, serial);
        assert_eq!(forced.len(), 4);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn forced_thread_map_matches_serial_map() {
        let items: Vec<usize> = (0..17).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for workers in [2, 3, 16, 64] {
            let out = par_map_ordered_with(items.clone(), |i| i * i, workers);
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn sweep_collects_series_in_load_order() {
        let mut tb = Testbed::build_sized(4, 13).unwrap();
        let methods = [Method::numbered(1), Method::numbered(8)];
        let sweep = run_sweep(&mut tb, &methods, &quick_options());
        assert_eq!(sweep.len(), 4);
        assert!(!sweep.is_empty());
        let s = sweep.series(Method::numbered(1));
        assert_eq!(s.len(), 2);
        assert!(s[0].0 < s[1].0);
        // More load, more power — for every method.
        for m in methods {
            let s = sweep.series(m);
            assert!(s[1].1 > s[0].1, "{m}: power did not grow with load: {s:?}");
        }
        assert!(sweep.mean_power(Method::numbered(1)).is_some());
        assert!(sweep.get(Method::numbered(8), 25.0).is_some());
        assert!(sweep.get(Method::numbered(8), 60.0).is_none());
    }
}
