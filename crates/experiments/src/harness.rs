//! Running one evaluation method on the simulated room, and sweeping many.

use crate::testbed::Testbed;
use coolopt_alloc::{AllocationPlan, Method, Planner, PolicyError};
use coolopt_room::SteadyMeasurement;
use coolopt_units::{Seconds, TempDelta, Watts};
use coolopt_workload::{Capacity, Document, LoadBalancer, LoadVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Execution knobs of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Load points as percentages of rack capacity (paper: 10–100 %).
    pub load_percents: Vec<f64>,
    /// Settling budget per run.
    pub settle_max: Seconds,
    /// Measurement window per run.
    pub window: Seconds,
    /// Tolerance above `T_max` before a run is flagged (sensor noise and
    /// quantization make exact comparisons meaningless).
    pub temp_margin: TempDelta,
    /// Guard band the planner keeps below `T_max` (absorbs fitted-model
    /// error; the ablation study sweeps it).
    pub guard: TempDelta,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            load_percents: (1..=10).map(|k| k as f64 * 10.0).collect(),
            settle_max: Seconds::new(4000.0),
            window: Seconds::new(60.0),
            temp_margin: TempDelta::from_kelvin(2.0),
            guard: coolopt_alloc::plan::DEFAULT_GUARD,
        }
    }
}

/// The outcome of running one method at one load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// The plan that was applied.
    pub plan: AllocationPlan,
    /// Load percentage of this run.
    pub load_percent: f64,
    /// Steady-state measurement through the instruments.
    pub measurement: SteadyMeasurement,
    /// `true` when no CPU exceeded `T_max` (within the margin).
    pub temps_ok: bool,
    /// `true` when the dispatcher realizes the planned shares (throughput
    /// constraint, paper: "application throughput was not affected").
    pub throughput_ok: bool,
}

impl MethodRun {
    /// Measured total power (the paper's y-axis).
    pub fn total_power(&self) -> Watts {
        self.measurement.total_power
    }
}

/// The planner a scenario should build **once** and reuse for every run
/// against the same testbed: the planner memoizes its solver engine, so the
/// expensive consolidation index is built on the first `plan()` and every
/// later load point or method is a pure query.
pub fn scenario_planner(testbed: &Testbed, options: &SweepOptions) -> Planner {
    Planner::with_guard(
        &testbed.profile.model,
        &testbed.profile.cooling.set_points,
        options.guard,
    )
}

/// Applies `method` at `load_percent` to the testbed's room and measures it.
///
/// Convenience wrapper that builds a throwaway [`Planner`]; sweeps and
/// studies that run many loads should build one with [`scenario_planner`]
/// and call [`run_method_with`] instead.
///
/// # Errors
///
/// Returns [`PolicyError`] when the method cannot plan this load.
pub fn run_method(
    testbed: &mut Testbed,
    method: Method,
    load_percent: f64,
    options: &SweepOptions,
) -> Result<MethodRun, PolicyError> {
    let planner = scenario_planner(testbed, options);
    run_method_with(&planner, testbed, method, load_percent, options)
}

/// Like [`run_method`], but reuses a caller-owned planner (and therefore
/// its memoized solver engine) instead of building one per run.
///
/// # Errors
///
/// Returns [`PolicyError`] when the method cannot plan this load.
pub fn run_method_with(
    planner: &Planner,
    testbed: &mut Testbed,
    method: Method,
    load_percent: f64,
    options: &SweepOptions,
) -> Result<MethodRun, PolicyError> {
    let plan = planner.plan(method, testbed.load_from_percent(load_percent))?;

    let room = &mut testbed.room;
    room.apply_on_set(&plan.on);
    room.set_loads(&plan.loads)
        .expect("plans carry valid loads");
    room.set_set_point(plan.set_point);
    let measurement = SteadyMeasurement::collect(room, options.settle_max, options.window);

    let t_limit = testbed.profile.model.t_max() + options.temp_margin;
    let temps_ok = measurement.max_cpu_temp <= t_limit;
    let throughput_ok = verify_throughput(&plan);

    Ok(MethodRun {
        plan,
        load_percent,
        measurement,
        temps_ok,
        throughput_ok,
    })
}

/// Checks that a weighted dispatcher realizes the plan's shares: after
/// dispatching a sizable batch, every machine's share of documents matches
/// its planned share of the load within 2 %.
fn verify_throughput(plan: &AllocationPlan) -> bool {
    let total = plan.total_load();
    if total <= 0.0 {
        return true; // nothing to serve
    }
    let loads = match LoadVector::new(plan.loads.clone()) {
        Ok(v) => v,
        Err(_) => return false,
    };
    let capacities = vec![Capacity::new(100.0); plan.loads.len()];
    let mut balancer = match LoadBalancer::new(&loads, &capacities) {
        Ok(b) => b,
        Err(_) => return false,
    };
    let doc = Document {
        id: 0,
        html: String::new(),
    };
    let n_docs = 5000;
    for _ in 0..n_docs {
        if balancer.dispatch(&doc).is_none() {
            return false;
        }
    }
    let stats = balancer.stats();
    plan.loads
        .iter()
        .enumerate()
        .all(|(i, &l)| (stats.share(i) - l / total).abs() < 0.02)
}

/// A key for looking up a run: method + load in tenths of a percent.
type RunKey = (Method, u32);

fn key(method: Method, load_percent: f64) -> RunKey {
    (method, (load_percent * 10.0).round() as u32)
}

/// All runs of an evaluation sweep.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    runs: BTreeMap<u32, Vec<(Method, MethodRun)>>,
}

impl Sweep {
    /// The run of `method` at `load_percent`, if it was swept.
    pub fn get(&self, method: Method, load_percent: f64) -> Option<&MethodRun> {
        let (m, l) = key(method, load_percent);
        self.runs
            .get(&l)?
            .iter()
            .find(|(method, _)| *method == m)
            .map(|(_, run)| run)
    }

    /// The series (load %, total watts) of one method, load-ascending.
    pub fn series(&self, method: Method) -> Vec<(f64, f64)> {
        self.runs
            .values()
            .filter_map(|row| {
                row.iter()
                    .find(|(m, _)| *m == method)
                    .map(|(_, run)| (run.load_percent, run.total_power().as_watts()))
            })
            .collect()
    }

    /// Mean measured power of one method over all swept loads.
    pub fn mean_power(&self, method: Method) -> Option<Watts> {
        let series = self.series(method);
        if series.is_empty() {
            return None;
        }
        Some(Watts::new(
            series.iter().map(|(_, w)| w).sum::<f64>() / series.len() as f64,
        ))
    }

    /// Every run, for auditing.
    pub fn iter(&self) -> impl Iterator<Item = &MethodRun> {
        self.runs.values().flatten().map(|(_, run)| run)
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.runs.values().map(Vec::len).sum()
    }

    /// `true` when the sweep holds no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Records a run (used by custom sweeps, e.g. the ablation studies).
    pub fn insert(&mut self, method: Method, load_percent: f64, run: MethodRun) {
        let (m, l) = key(method, load_percent);
        self.runs.entry(l).or_default().push((m, run));
    }
}

/// Runs every `(method, load)` combination on the testbed.
///
/// Methods that cannot plan a combination (e.g. infeasible corner) are
/// skipped rather than failing the sweep; [`Sweep::get`] then returns
/// `None` for them.
pub fn run_sweep(testbed: &mut Testbed, methods: &[Method], options: &SweepOptions) -> Sweep {
    let mut sweep = Sweep::default();
    let planner = scenario_planner(testbed, options);
    for &percent in &options.load_percents {
        for &method in methods {
            if let Ok(run) = run_method_with(&planner, testbed, method, percent, options) {
                let (m, l) = key(method, percent);
                sweep.runs.entry(l).or_default().push((m, run));
            }
        }
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> SweepOptions {
        SweepOptions {
            load_percents: vec![25.0, 75.0],
            settle_max: Seconds::new(3000.0),
            window: Seconds::new(40.0),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn run_method_respects_constraints_and_measures() {
        let mut tb = Testbed::build_sized(4, 11).unwrap();
        let run = run_method(&mut tb, Method::numbered(8), 50.0, &quick_options()).unwrap();
        assert!(run.measurement.settled, "run did not settle");
        assert!(run.temps_ok, "max cpu {}", run.measurement.max_cpu_temp);
        assert!(run.throughput_ok);
        assert!(run.total_power().as_watts() > 500.0);
        assert!((run.plan.total_load() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sweep_collects_series_in_load_order() {
        let mut tb = Testbed::build_sized(4, 13).unwrap();
        let methods = [Method::numbered(1), Method::numbered(8)];
        let sweep = run_sweep(&mut tb, &methods, &quick_options());
        assert_eq!(sweep.len(), 4);
        assert!(!sweep.is_empty());
        let s = sweep.series(Method::numbered(1));
        assert_eq!(s.len(), 2);
        assert!(s[0].0 < s[1].0);
        // More load, more power — for every method.
        for m in methods {
            let s = sweep.series(m);
            assert!(s[1].1 > s[0].1, "{m}: power did not grow with load: {s:?}");
        }
        assert!(sweep.mean_power(Method::numbered(1)).is_some());
        assert!(sweep.get(Method::numbered(8), 25.0).is_some());
        assert!(sweep.get(Method::numbered(8), 60.0).is_none());
    }
}
