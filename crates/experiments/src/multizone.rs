//! Multi-zone scenario validation: per-zone set-point planning against the
//! best single shared supply temperature, closed on the simulated plant.
//!
//! The planner side works purely on the scenario's **declared** models
//! ([`coolopt_scenario::zone_system`] → [`coolopt_core::solve_zones`]); the
//! plant side materializes the same document into a
//! [`coolopt_room::MultiZoneRoom`] and simulates both plans to steady state.
//! The PR 5 model-health watchdog closes the loop: settled residuals between
//! the declared per-machine prediction and the simulated CPU temperatures
//! feed the drift detector, and the distance to the policy's `T_max` feeds
//! the margin monitor. A scenario whose declared `α/β/γ` disagree with its
//! own physics trips the watchdog here, before anyone trusts its plans.

use coolopt_core::{solve_zones, solve_zones_uniform, SolveError, ZoneSolution, ZoneSystem};
use coolopt_room::room::InvalidRoom;
use coolopt_room::{materialize, MaterializedRoom, MultiZoneRoom};
use coolopt_scenario::{zone_system, Scenario, ScenarioError};
use coolopt_sim::{HealthConfig, HealthReport, ModelHealthMonitor};
use coolopt_telemetry as telemetry;
use coolopt_units::{Seconds, Temperature, Watts};
use std::fmt;

/// Why the multi-zone experiment could not run.
#[derive(Debug)]
pub enum MultiZoneError {
    /// The scenario document is invalid or does not assemble into a
    /// declared zone system.
    Scenario(ScenarioError),
    /// The per-zone planner failed on the declared system.
    Solve(SolveError),
    /// The scenario failed to materialize into a consistent plant.
    Room(InvalidRoom),
    /// The experiment needs at least two zones.
    SingleZone,
}

impl fmt::Display for MultiZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiZoneError::Scenario(e) => write!(f, "scenario rejected: {e}"),
            MultiZoneError::Solve(e) => write!(f, "planning failed: {e}"),
            MultiZoneError::Room(e) => write!(f, "plant rejected: {e}"),
            MultiZoneError::SingleZone => {
                write!(f, "scenario has one zone; use the testbed pipeline")
            }
        }
    }
}

impl std::error::Error for MultiZoneError {}

impl From<ScenarioError> for MultiZoneError {
    fn from(e: ScenarioError) -> Self {
        MultiZoneError::Scenario(e)
    }
}

impl From<SolveError> for MultiZoneError {
    fn from(e: SolveError) -> Self {
        MultiZoneError::Solve(e)
    }
}

impl From<InvalidRoom> for MultiZoneError {
    fn from(e: InvalidRoom) -> Self {
        MultiZoneError::Room(e)
    }
}

/// Knobs of [`run_multizone`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiZoneOptions {
    /// Total load as a fraction of the machine count.
    pub load_fraction: f64,
    /// Settle budget per variant.
    pub max_settle: Seconds,
    /// Post-settle measurement window (1 Hz sampling).
    pub window: Seconds,
    /// Watchdog tuning for the per-zone validation run.
    pub health: HealthConfig,
    /// When set, both variants stream per-zone plant series into the
    /// process-global [time-series store](coolopt_telemetry::tsdb):
    /// `{prefix}.{variant}.zone{z}.computing_watts` plus room-level
    /// `cooling_watts` and `margin_kelvin`, on the simulation clock. A
    /// no-op without the `telemetry` feature.
    pub tsdb_prefix: Option<&'static str>,
}

impl Default for MultiZoneOptions {
    fn default() -> Self {
        MultiZoneOptions {
            load_fraction: 0.5,
            max_settle: Seconds::new(6_000.0),
            window: Seconds::new(300.0),
            health: HealthConfig::default(),
            tsdb_prefix: None,
        }
    }
}

/// Steady-state outcome of driving one plan on the simulated plant.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantOutcome {
    /// Commanded supply temperature per CRAC.
    pub t_ac: Vec<Temperature>,
    /// The planner's predicted total power (declared models).
    pub predicted_total: Watts,
    /// Measured mean computing power.
    pub computing: Watts,
    /// Measured mean cooling power.
    pub cooling: Watts,
    /// Measured mean total power.
    pub total: Watts,
    /// Hottest true CPU temperature during the window.
    pub max_cpu: Temperature,
    /// Smallest observed distance (K) between the hottest CPU and the
    /// policy's true `T_max` (negative = violation).
    pub min_margin_kelvin: f64,
    /// Whether the plant reached steady state within the settle budget.
    pub settled: bool,
    /// Watchdog verdict (`None` when telemetry is compiled out).
    pub health: Option<HealthReport>,
}

/// The experiment's result: per-zone plan vs the uniform baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiZoneOutcome {
    /// Zone count.
    pub zones: usize,
    /// Machine count.
    pub machines: usize,
    /// Total load driven (absolute, machines × fraction).
    pub total_load: f64,
    /// The block-structured per-zone plan, validated on the plant.
    pub per_zone: VariantOutcome,
    /// The best single shared supply temperature, same plant.
    pub uniform: VariantOutcome,
}

impl MultiZoneOutcome {
    /// Measured savings of the per-zone plan over the uniform baseline,
    /// as a fraction of the uniform total.
    pub fn savings_fraction(&self) -> f64 {
        let u = self.uniform.total.as_watts();
        if u > 0.0 {
            (u - self.per_zone.total.as_watts()) / u
        } else {
            0.0
        }
    }
}

/// Plans per-zone and uniform set points on the declared models, then
/// simulates both on the materialized plant and compares steady-state
/// power, `T_max` margins, and watchdog verdicts.
///
/// # Errors
///
/// Returns [`MultiZoneError`] for single-zone documents, invalid scenarios,
/// planning failures, and plants that fail component validation.
pub fn run_multizone(
    scenario: &Scenario,
    options: &MultiZoneOptions,
) -> Result<MultiZoneOutcome, MultiZoneError> {
    if scenario.is_single_zone() {
        return Err(MultiZoneError::SingleZone);
    }
    let system = zone_system(scenario)?;
    let machines = system.total_machines();
    let total_load = options.load_fraction * machines as f64;
    let per_plan = solve_zones(&system, total_load)?;
    let uni_plan = solve_zones_uniform(&system, total_load)?;
    telemetry::info!(
        "multizone",
        "planned per-zone and uniform set points",
        zones = system.len(),
        machines = machines,
        total_load = total_load,
        per_zone_watts = per_plan.total().as_watts(),
        uniform_watts = uni_plan.total().as_watts(),
    );
    let per_zone = run_variant(scenario, &system, &per_plan, options, true)?;
    let uniform = run_variant(scenario, &system, &uni_plan, options, false)?;
    Ok(MultiZoneOutcome {
        zones: system.len(),
        machines,
        total_load,
        per_zone,
        uniform,
    })
}

/// Simulates one plan to steady state and measures it. The watchdog only
/// runs on the per-zone variant (`watch`): the uniform baseline shares the
/// same declared models, so one verdict covers both.
fn run_variant(
    scenario: &Scenario,
    system: &ZoneSystem,
    plan: &ZoneSolution,
    options: &MultiZoneOptions,
    watch: bool,
) -> Result<VariantOutcome, MultiZoneError> {
    let MaterializedRoom::Multi(mut room) = materialize(scenario)? else {
        return Err(MultiZoneError::SingleZone);
    };
    room.force_all_on();
    let flat_loads: Vec<f64> = plan.loads.iter().flatten().copied().collect();
    room.set_loads(&flat_loads)
        .expect("planned loads are valid fractions");
    room.set_fixed_supplies(&plan.t_ac);
    let settled = room.settle(options.max_settle, 5.0);

    // Declared per-machine predictions at the commanded supply vector; the
    // residuals against the simulated plant feed the drift detector.
    let n = room.len();
    let mut predicted = vec![0.0; n];
    {
        let mut i = 0;
        for (z, zone_loads) in plan.loads.iter().enumerate() {
            for (j, &l) in zone_loads.iter().enumerate() {
                predicted[i] = system.predict_cpu_temp(z, j, l, &plan.t_ac).as_kelvin();
                i += 1;
            }
        }
    }

    let t_max = scenario.policy.t_max.as_kelvin();
    let mut monitor = ModelHealthMonitor::new(n, options.health);
    let dt = room.config().dt.as_secs_f64();
    let steps = (options.window.as_secs_f64() / dt).ceil().max(1.0) as usize;
    let mut computing = 0.0;
    let mut cooling = 0.0;
    let mut max_cpu = f64::NEG_INFINITY;
    let mut min_margin = f64::INFINITY;
    // Per-zone series names are built once; the measure loop only appends.
    let variant = if watch { "per_zone" } else { "uniform" };
    let tsdb_names: Option<(Vec<String>, String, String)> = options
        .tsdb_prefix
        .filter(|_| telemetry::metrics_enabled())
        .map(|prefix| {
            (
                (0..room.zone_count())
                    .map(|z| format!("{prefix}.{variant}.zone{z}.computing_watts"))
                    .collect(),
                format!("{prefix}.{variant}.cooling_watts"),
                format!("{prefix}.{variant}.margin_kelvin"),
            )
        });
    for k in 0..steps {
        room.step();
        computing += room.computing_power().as_watts();
        cooling += room.cooling_power().as_watts();
        let hottest = room
            .servers()
            .iter()
            .map(|s| s.cpu_temp().as_kelvin())
            .fold(f64::NEG_INFINITY, f64::max);
        max_cpu = max_cpu.max(hottest);
        min_margin = min_margin.min(t_max - hottest);
        // Stream per-zone power and the safety margin at a 10 s cadence
        // (every 10th 1 Hz step), on the simulation clock.
        if k % 10 == 0 {
            if let Some((zone_names, cooling_name, margin_name)) = &tsdb_names {
                let db = telemetry::tsdb();
                let sim_ms = (room.now().as_secs_f64() * 1000.0) as i64;
                let mut per_zone = vec![0.0; room.zone_count()];
                for (i, s) in room.servers().iter().enumerate() {
                    per_zone[room.zone_of(i)] += s.power_draw().as_watts();
                }
                for (name, watts) in zone_names.iter().zip(per_zone) {
                    db.append(name, sim_ms, watts);
                }
                db.append(cooling_name, sim_ms, room.cooling_power().as_watts());
                db.append(margin_name, sim_ms, t_max - hottest);
            }
        }
        if watch {
            monitor.observe_margin(room.now(), t_max - hottest);
            // Residuals at a 10 s cadence, mirroring the runtime watchdog.
            if k % 10 == 0 {
                for (i, s) in room.servers().iter().enumerate() {
                    monitor.observe_residual(i, predicted[i] - s.cpu_temp().as_kelvin());
                }
            }
        }
    }
    let k = steps as f64;
    let computing = Watts::new(computing / k);
    let cooling = Watts::new(cooling / k);
    Ok(VariantOutcome {
        t_ac: plan.t_ac.clone(),
        predicted_total: plan.total(),
        computing,
        cooling,
        total: computing + cooling,
        max_cpu: Temperature::from_kelvin(max_cpu),
        min_margin_kelvin: min_margin,
        settled,
        health: if watch { monitor.finish() } else { None },
    })
}

/// Renders the human-readable comparison table.
pub fn render_multizone(scenario: &Scenario, outcome: &MultiZoneOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Per-zone vs uniform set points on {:?} ({} zones, {} machines, load {:.1}) ==",
        scenario.name, outcome.zones, outcome.machines, outcome.total_load
    );
    let _ = writeln!(
        out,
        "{:>10} {:>24} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "plan", "T_ac (°C)", "predicted W", "measured W", "cooling W", "margin K", "settled"
    );
    for (label, v) in [
        ("per-zone", &outcome.per_zone),
        ("uniform", &outcome.uniform),
    ] {
        let supplies = v
            .t_ac
            .iter()
            .map(|t| format!("{:.2}", t.as_celsius()))
            .collect::<Vec<_>>()
            .join(" / ");
        let _ = writeln!(
            out,
            "{label:>10} {supplies:>24} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>8}",
            v.predicted_total.as_watts(),
            v.total.as_watts(),
            v.cooling.as_watts(),
            v.min_margin_kelvin,
            v.settled,
        );
    }
    let _ = writeln!(
        out,
        "measured savings of per-zone over uniform: {:.2} %",
        outcome.savings_fraction() * 100.0
    );
    out
}

/// Re-exported so the binaries can name the room type in messages.
pub type Plant = MultiZoneRoom;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_zone_preset_beats_uniform_on_the_simulated_plant() {
        let scenario = coolopt_scenario::presets::two_zone_hetero(7);
        let options = MultiZoneOptions {
            max_settle: Seconds::new(6_000.0),
            window: Seconds::new(120.0),
            ..MultiZoneOptions::default()
        };
        let outcome = run_multizone(&scenario, &options).expect("experiment runs");
        eprintln!("{}", render_multizone(&scenario, &outcome));
        assert!(outcome.per_zone.settled && outcome.uniform.settled);
        // The acceptance bar: strictly cheaper than the best single global
        // supply temperature, with non-negative T_max margin and no drift.
        assert!(
            outcome.per_zone.total < outcome.uniform.total,
            "per-zone {} should beat uniform {}",
            outcome.per_zone.total,
            outcome.uniform.total
        );
        assert!(
            outcome.per_zone.min_margin_kelvin >= 0.0,
            "T_max margin {} must be non-negative",
            outcome.per_zone.min_margin_kelvin
        );
        if let Some(health) = &outcome.per_zone.health {
            assert!(health.healthy(), "declared models drifted: {health:?}");
        }
    }

    /// Calibration harness for the shipped two-zone preset: probes the
    /// materialized plant with supply-temperature and load steps and prints
    /// fitted per-zone `α`/`γ` gradients, per-class `w1/w2/β`, and per-CRAC
    /// `cf`/`T_SP`. Run it with `--ignored --nocapture` after changing the
    /// two-zone physics, and transplant the numbers into
    /// `coolopt_scenario::presets::two_zone_hetero`.
    #[test]
    #[ignore = "calibration harness; prints coefficients for the preset"]
    fn calibrate_two_zone_declared_models() {
        let scenario = coolopt_scenario::presets::two_zone_hetero(0);
        let coupling = coolopt_scenario::coupling_matrix(&scenario);
        let n = scenario.total_machines();
        // Mean per-machine (T_cpu K, P W) and per-CRAC electrical power at a
        // settled operating point.
        let probe = |t0: f64, t1: f64, load: f64| -> (Vec<f64>, Vec<f64>, [f64; 2]) {
            let MaterializedRoom::Multi(mut room) = materialize(&scenario).unwrap() else {
                unreachable!("preset is multi-zone");
            };
            room.force_all_on();
            room.set_loads(&vec![load; n]).unwrap();
            room.set_fixed_supplies(&[
                Temperature::from_celsius(t0),
                Temperature::from_celsius(t1),
            ]);
            assert!(room.settle(Seconds::new(10_000.0), 2.0), "probe settles");
            let steps = 400;
            let mut t = vec![0.0; n];
            let mut p = vec![0.0; n];
            let mut ac = [0.0; 2];
            for _ in 0..steps {
                room.step();
                for (i, s) in room.servers().iter().enumerate() {
                    t[i] += s.cpu_temp().as_kelvin();
                    p[i] += s.power_draw().as_watts();
                }
                let state = room.air_state();
                for (u, (crac, &ret)) in room.cracs().iter().zip(&state.returns).enumerate() {
                    ac[u] += crac.electrical_power(ret, crac.integral()).as_watts();
                }
            }
            let k = steps as f64;
            t.iter_mut().for_each(|v| *v /= k);
            p.iter_mut().for_each(|v| *v /= k);
            ac.iter_mut().for_each(|v| *v /= k);
            (t, p, ac)
        };

        // An 8 K supply step so the secant spans the planner's whole trust
        // region (the preset caps `T_ac` at 30 °C near / 24 °C far).
        let (tb, pb, acb) = probe(16.0, 16.0, 0.5);
        let (t0, _, ac0) = probe(24.0, 16.0, 0.5);
        let (t1, _, ac1) = probe(16.0, 24.0, 0.5);
        let (tl, pl, _) = probe(16.0, 16.0, 0.8);

        let zone_starts: Vec<usize> = scenario
            .zones
            .iter()
            .scan(0usize, |acc, z| {
                let s = *acc;
                *acc += z.machine_count();
                Some(s)
            })
            .collect();
        for (z, zone) in scenario.zones.iter().enumerate() {
            let nz = zone.machine_count();
            let start = zone_starts[z];
            let c0 = coupling[z][0];
            let c1 = coupling[z][1];
            // Per-machine fits, then a least-squares line over rack height.
            let mut alphas = Vec::new();
            let mut gammas = Vec::new();
            let mut betas = Vec::new();
            let mut w1s = Vec::new();
            let mut w2s = Vec::new();
            for j in 0..nz {
                let i = start + j;
                let s0 = (t0[i] - tb[i]) / 8.0;
                let s1 = (t1[i] - tb[i]) / 8.0;
                // Best α given the declared coupling row (least squares over
                // the two probes).
                let alpha = (s0 * c0 + s1 * c1) / (c0 * c0 + c1 * c1);
                let beta = (tl[i] - tb[i]) / (pl[i] - pb[i]);
                let w1 = (pl[i] - pb[i]) / 0.3;
                let w2 = pb[i] - w1 * 0.5;
                let t_eff = c0 * (16.0 + 273.15) + c1 * (16.0 + 273.15);
                let gamma = tb[i] - alpha * t_eff - beta * pb[i];
                alphas.push(alpha);
                gammas.push(gamma);
                betas.push(beta);
                w1s.push(w1);
                w2s.push(w2);
            }
            let fit_line = |ys: &[f64]| -> (f64, f64) {
                // y ≈ a + b·h with h = j/(n−1); returns (a, b).
                let m = ys.len() as f64;
                let hs: Vec<f64> = (0..ys.len())
                    .map(|j| j as f64 / (ys.len() - 1).max(1) as f64)
                    .collect();
                let hm = hs.iter().sum::<f64>() / m;
                let ym = ys.iter().sum::<f64>() / m;
                let num: f64 = hs.iter().zip(ys).map(|(h, y)| (h - hm) * (y - ym)).sum();
                let den: f64 = hs.iter().map(|h| (h - hm) * (h - hm)).sum();
                let b = if den > 0.0 { num / den } else { 0.0 };
                (ym - b * hm, b)
            };
            let (alpha_base, alpha_slope) = fit_line(&alphas);
            let (gamma_base, gamma_slope) = fit_line(&gammas);
            let beta = betas.iter().sum::<f64>() / nz as f64;
            let w1 = w1s.iter().sum::<f64>() / nz as f64;
            let w2 = w2s.iter().sum::<f64>() / nz as f64;
            // The plant's cooling response to a zone's supply temperature is
            // the change in **total** electrical power: part of a single
            // CRAC's own response is heat shifting to the other unit, and
            // only the remainder is a real saving. The two directional
            // responses genuinely differ (the far zone draws more room-air
            // makeup), and the plant is linear and separable over the
            // planner's trust region, so the secants are the model. `T_SP`
            // is split so the predicted base-point total matches the plant.
            let total_b = acb[0] + acb[1];
            let d_total = match z {
                0 => total_b - (ac0[0] + ac0[1]),
                _ => total_b - (ac1[0] + ac1[1]),
            };
            let cf = d_total / 8.0;
            let cf_total = (2.0 * total_b - (ac0[0] + ac0[1]) - (ac1[0] + ac1[1])) / 8.0;
            let t_sp = 16.0 + total_b / cf_total;
            println!(
                "zone {z} ({}): alpha {alpha_base:.4} span {:.4}, gamma {gamma_base:.2} K \
                 span {:.2} K, beta {beta:.4} K/W, w1 {w1:.2} W, w2 {w2:.2} W, \
                 cf {cf:.1} W/K, t_sp {t_sp:.2} °C",
                zone.name, -alpha_slope, gamma_slope,
            );
        }
    }

    #[test]
    #[ignore = "diagnostic sweep; prints the plant's supply-temperature response"]
    fn sweep_uniform_supplies() {
        let scenario = coolopt_scenario::presets::two_zone_hetero(0);
        let n = scenario.total_machines();
        for (t0, t1) in [
            (14.0, 14.0),
            (16.0, 16.0),
            (18.0, 18.0),
            (20.0, 20.0),
            (22.0, 22.0),
            (24.0, 24.0),
            (26.0, 26.0),
            (28.0, 28.0),
            // Asymmetric splits: warm the near zone, hold the far zone.
            (24.0, 20.0),
            (26.0, 20.0),
            (28.0, 20.0),
            (30.0, 20.0),
            (26.0, 18.0),
            (28.0, 18.0),
        ] {
            let MaterializedRoom::Multi(mut room) = materialize(&scenario).unwrap() else {
                unreachable!("preset is multi-zone");
            };
            room.force_all_on();
            room.set_loads(&vec![0.5; n]).unwrap();
            room.set_fixed_supplies(&[
                Temperature::from_celsius(t0),
                Temperature::from_celsius(t1),
            ]);
            assert!(room.settle(Seconds::new(10_000.0), 2.0));
            let mut cool = 0.0;
            let mut comp = 0.0;
            let mut hot0 = f64::NEG_INFINITY;
            let mut hot1 = f64::NEG_INFINITY;
            let near = room.zone_range(0);
            for _ in 0..200 {
                room.step();
                cool += room.cooling_power().as_watts();
                comp += room.computing_power().as_watts();
                for (i, s) in room.servers().iter().enumerate() {
                    let t = s.cpu_temp().as_celsius();
                    if near.contains(&i) {
                        hot0 = hot0.max(t);
                    } else {
                        hot1 = hot1.max(t);
                    }
                }
            }
            let state = room.air_state();
            println!(
                "T_ac {t0:>5.1}/{t1:>5.1} °C | cooling {:>7.1} W | computing {:>7.1} W | \
                 hottest {hot0:>5.1}/{hot1:>5.1} °C | room {:>5.1} °C | supplies {:.2}/{:.2}",
                cool / 200.0,
                comp / 200.0,
                room.room_temp().as_celsius(),
                state.supplies[0].as_celsius(),
                state.supplies[1].as_celsius(),
            );
        }
    }

    #[test]
    fn single_zone_documents_are_rejected() {
        let scenario = coolopt_scenario::presets::testbed_rack20(0);
        assert!(matches!(
            run_multizone(&scenario, &MultiZoneOptions::default()),
            Err(MultiZoneError::SingleZone)
        ));
    }
}
