//! Rendering figure data as ASCII tables and CSV.

use crate::figures::FigureData;
use std::fmt::Write as _;

/// Renders a figure as a readable ASCII table: one row per x value, one
/// column per series (plus a preformatted block for table-like artifacts).
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ({}) ==", fig.title, fig.id);
    if let Some(text) = &fig.text {
        out.push_str(text);
        return out;
    }
    let xs = merged_xs(fig);
    let _ = write!(out, "{:>10}", fig.axes.0);
    for s in &fig.series {
        let _ = write!(out, " {:>12}", truncate(&s.label, 12));
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x:>10.1}");
        for s in &fig.series {
            match lookup(s.points.as_slice(), x) {
                Some(y) => {
                    let _ = write!(out, " {y:>12.1}");
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "(y: {})", fig.axes.1);
    out
}

/// Renders a figure as CSV: header `x,label1,label2,…`, one row per x.
pub fn to_csv(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", csv_escape(&fig.axes.0));
    for s in &fig.series {
        let _ = write!(out, ",{}", csv_escape(&s.label));
    }
    out.push('\n');
    for &x in &merged_xs(fig) {
        let _ = write!(out, "{x}");
        for s in &fig.series {
            match lookup(s.points.as_slice(), x) {
                Some(y) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// All distinct x values across series, ascending. Dense series (e.g. the
/// 1 Hz traces of Figs. 2–3) are thinned to at most 200 rows.
fn merged_xs(fig: &FigureData) -> Vec<f64> {
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    if xs.len() > 200 {
        let stride = xs.len().div_ceil(200);
        xs = xs.into_iter().step_by(stride).collect();
    }
    xs
}

fn lookup(points: &[(f64, f64)], x: f64) -> Option<f64> {
    points
        .iter()
        .find(|&&(px, _)| (px - x).abs() < 1e-9)
        .map(|&(_, y)| y)
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn sample() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "Sample".into(),
            axes: ("Load (%)".into(), "Power (W)".into()),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![(10.0, 100.0), (20.0, 200.0)],
                },
                Series {
                    label: "B".into(),
                    points: vec![(20.0, 150.0)],
                },
            ],
            text: None,
        }
    }

    #[test]
    fn ascii_contains_values_and_gaps() {
        let s = render_figure(&sample());
        assert!(s.contains("100.0"));
        assert!(s.contains("150.0"));
        assert!(s.contains('-'), "missing gap marker:\n{s}");
        assert!(s.contains("Power (W)"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("Load (%),A,B"));
        assert_eq!(lines.next(), Some("10,100,"));
        assert_eq!(lines.next(), Some("20,200,150"));
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let mut fig = sample();
        fig.series[0].label = "a,b".into();
        assert!(to_csv(&fig).starts_with("Load (%),\"a,b\",B"));
    }

    #[test]
    fn text_figures_pass_through() {
        let fig = FigureData {
            id: "table1".into(),
            title: "T".into(),
            axes: (String::new(), String::new()),
            series: vec![],
            text: Some("BODY".into()),
        };
        assert!(render_figure(&fig).contains("BODY"));
    }

    #[test]
    fn dense_series_are_thinned() {
        let fig = FigureData {
            id: "dense".into(),
            title: "D".into(),
            axes: ("t".into(), "v".into()),
            series: vec![Series {
                label: "x".into(),
                points: (0..1000).map(|k| (k as f64, k as f64)).collect(),
            }],
            text: None,
        };
        assert!(to_csv(&fig).lines().count() <= 202);
    }
}
