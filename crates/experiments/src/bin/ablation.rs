//! Runs the ablation studies (beyond the paper's own evaluation):
//!
//! 1. separate vs holistic optimization,
//! 2. the planner's guard band (safety ↔ energy),
//! 3. recirculation strength (model-mismatch robustness),
//! 4. seed sensitivity of the headline savings,
//! 5. the response-time cost of consolidation,
//! 6. dynamic load with online replanning.
//!
//! ```text
//! cargo run --release -p coolopt-experiments --bin ablation -- \
//!     [seed] [--scenario FILE] [--results DIR] [--json] [--quiet]
//! ```
//!
//! `--scenario FILE` swaps the built-in 12-machine preset for a
//! **single-zone** scenario document; the studies then run against the
//! materialized room (multi-zone documents belong to
//! `reproduce --scenario`).
//!
//! Progress goes to stderr as structured events (`--json` renders them as
//! JSON lines, `--quiet` keeps only warnings); study tables go to stdout
//! except under `--json`, where stdout carries exactly one JSON document:
//! the telemetry run report (always also written under `--results`,
//! default `results/`).

use coolopt_alloc::Method;
use coolopt_experiments::ablations::{
    guard_band_study, recirculation_study, seed_study, separate_vs_holistic,
};
use coolopt_experiments::harness::scenario_planner;
use coolopt_experiments::runtime::{run_load_trace_with, sinusoidal_trace, RuntimeOptions};
use coolopt_experiments::{
    render_figure, HealthSection, RunReport, ScenarioSection, SweepOptions, Testbed, TraceSection,
};
use coolopt_scenario::Scenario;
use coolopt_telemetry::{self as telemetry, SinkMode};
use coolopt_units::Seconds;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let json = flag("--json");
    if flag("--quiet") {
        telemetry::init_events(SinkMode::Quiet);
    } else if json {
        telemetry::init_events(SinkMode::Json);
    }
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
    };
    let results_dir = value_of("--results").unwrap_or_else(|| PathBuf::from("results"));
    let scenario_path = value_of("--scenario");
    let seed: u64 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let prev = i.checked_sub(1).and_then(|p| args.get(p));
            !a.starts_with("--")
                && !matches!(
                    prev.map(String::as_str),
                    Some("--results") | Some("--scenario")
                )
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(42);
    let show = !json;

    let loaded: Option<Scenario> = scenario_path.as_ref().map(|path| {
        Scenario::load(path).unwrap_or_else(|e| panic!("scenario {} rejected: {e}", path.display()))
    });
    let machines = loaded.as_ref().map(Scenario::total_machines).unwrap_or(12); // enough spatial diversity, ~4× faster than 20

    telemetry::info!(
        "ablation",
        "building and profiling the testbed",
        machines = machines,
        seed = seed
    );
    let mut testbed = match &loaded {
        Some(scenario) => Testbed::from_scenario(scenario)
            .expect("single-zone scenario testbed builds (multi-zone belongs to reproduce)"),
        None => Testbed::build_sized(machines, seed).expect("testbed builds"),
    };
    let seed = testbed.scenario.seed;
    let options = SweepOptions {
        load_percents: vec![20.0, 40.0, 60.0, 80.0],
        ..SweepOptions::default()
    };
    // One planner (one consolidation-index build) serves every study that
    // keeps the default guard; its engine is memoized across all queries.
    let planner = scenario_planner(&testbed, &options);

    // --- 1: separate vs holistic -------------------------------------------
    telemetry::info!("ablation", "study 1: separate vs holistic optimization");
    let fig = separate_vs_holistic(&mut testbed, &options);
    if show {
        println!("{}", render_figure(&fig));
    }

    // --- 2: guard band -------------------------------------------------------
    telemetry::info!("ablation", "study 2: guard band sweep");
    if show {
        println!("== Guard band vs safety and energy (method #8, 60 % load) ==");
        println!(
            "{:>8} {:>12} {:>12} {:>6}",
            "guard K", "power W", "max CPU °C", "safe"
        );
    }
    for o in guard_band_study(
        &mut testbed,
        Method::numbered(8),
        60.0,
        &[0.0, 1.0, 2.0, 3.0, 4.0],
        &options,
    ) {
        if show {
            println!(
                "{:>8.1} {:>12.1} {:>12.2} {:>6}",
                o.guard_kelvin, o.total_power, o.max_cpu_celsius, o.safe
            );
        }
    }
    if show {
        println!();
    }

    // --- 3: recirculation strength ------------------------------------------
    telemetry::info!(
        "ablation",
        "study 3: recirculation sweep (re-profiles per scale; slow)"
    );
    if show {
        println!("== Recirculation strength vs #8-over-#7 savings ==");
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            "scale", "mean savings", "min savings", "thermal r²"
        );
    }
    let quick = SweepOptions {
        load_percents: vec![30.0, 60.0, 90.0],
        ..SweepOptions::default()
    };
    for o in recirculation_study(8, seed, &[0.0, 1.0, 2.0], &quick) {
        if show {
            println!(
                "{:>6.1} {:>13.1} % {:>13.1} % {:>14.4}",
                o.scale,
                o.mean_savings * 100.0,
                o.min_savings * 100.0,
                o.mean_thermal_r2
            );
        }
    }
    if show {
        println!();
    }

    // --- 4: seed sensitivity ---------------------------------------------------
    telemetry::info!(
        "ablation",
        "study 4: seed sensitivity (re-profiles per seed; slow)"
    );
    if show {
        println!("== Testbed-instance sensitivity of #8-over-#7 savings ==");
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            "seed", "mean savings", "max", "min"
        );
    }
    for o in seed_study(8, &[seed, seed + 1, seed + 2], &quick) {
        if show {
            println!(
                "{:>6} {:>13.1} % {:>13.1} % {:>13.1} %",
                o.seed,
                o.mean_savings * 100.0,
                o.max_savings * 100.0,
                o.min_savings * 100.0
            );
        }
    }
    if show {
        println!();
    }

    // --- 5: latency cost of consolidation --------------------------------------
    telemetry::info!("ablation", "study 5: response-time cost of consolidation");
    if show {
        println!("== Response time under each method's allocation (30 % load) ==");
        println!(
            "{:>22} {:>8} {:>12} {:>12} {:>10}",
            "method", "peak rho", "mean resp", "p95 resp", "vs spread"
        );
    }
    {
        use coolopt_workload::{simulate_queueing, Capacity, LoadVector};
        let total_load = 0.3 * machines as f64;
        let capacity = 100.0; // docs/s per machine
        let arrival = total_load * capacity; // the offered stream
        let capacities = vec![Capacity::new(capacity); machines];
        let mut spread_p95 = None;
        for (label, method) in [
            ("even spread (#4)", Method::numbered(4)),
            ("bottom-up cons. (#7)", Method::numbered(7)),
            ("holistic cons. (#8)", Method::numbered(8)),
        ] {
            let plan = planner.plan(method, total_load).expect("plannable");
            let loads = LoadVector::new(plan.loads.clone()).expect("valid loads");
            let stats = simulate_queueing(&loads, &capacities, arrival, 50_000, seed)
                .expect("queue sim runs");
            let rel = spread_p95
                .map(|base: f64| format!("{:>9.1}x", stats.p95_response / base))
                .unwrap_or_else(|| "  baseline".to_string());
            spread_p95.get_or_insert(stats.p95_response);
            if show {
                println!(
                    "{label:>22} {:>8.2} {:>9.1} ms {:>9.1} ms {rel}",
                    stats.peak_utilization,
                    stats.mean_response * 1000.0,
                    stats.p95_response * 1000.0,
                );
            }
        }
    }
    if show {
        println!();
    }

    // --- 6: dynamic load ------------------------------------------------------
    telemetry::info!("ablation", "study 6: dynamic load with online replanning");
    if show {
        println!("== Online replanning over a diurnal trace (4 h simulated) ==");
    }
    let trace = sinusoidal_trace(machines, 0.15, 0.85, Seconds::new(14_400.0), 24);
    let mut report_trace: Option<TraceSection> = None;
    let mut report_health: Option<HealthSection> = None;
    let mut dashboard_segments = Vec::new();
    for (label, method) in [
        ("holistic #8 (replanned)", Method::numbered(8)),
        ("even #4 (replanned)", Method::numbered(4)),
        ("static even #1", Method::numbered(1)),
    ] {
        let outcome = run_load_trace_with(
            &planner,
            &mut testbed,
            method,
            &trace,
            Seconds::new(14_400.0),
            &RuntimeOptions {
                // Only the run of record streams into the time-series
                // store, so the dashboard shows one method, not three
                // interleaved.
                tsdb_prefix: report_trace.is_none().then(|| "trace".to_string()),
                ..RuntimeOptions::default()
            },
        )
        .expect("trace run succeeds");
        // The report carries the holistic run (the paper's method of record).
        if report_trace.is_none() {
            report_trace = Some(TraceSection::from_outcome(method.to_string(), &outcome));
            report_health = outcome.health.clone().map(|report| HealthSection {
                report,
                drift_demo: None,
            });
            dashboard_segments = outcome.segments.clone();
        }
        if show {
            println!(
                "{label:<26} energy {:>8.2} kWh | mean {:>8} | served {:>6.2} % | \
                 T_max violations {:>5.0} s | replans {}",
                outcome.energy.as_kwh(),
                outcome.mean_power,
                outcome.served_fraction * 100.0,
                outcome.violation_seconds,
                outcome.replans,
            );
        }
    }

    let report = RunReport {
        name: "ablation".to_string(),
        seed,
        scenario: Some(ScenarioSection::from_scenario(&testbed.scenario)),
        metrics_enabled: telemetry::metrics_enabled(),
        flight_dropped: coolopt_experiments::export_flight_dropped(),
        metrics: telemetry::snapshot(),
        trace: report_trace,
        replay: None,
        health: report_health,
        multizone: None,
    };
    let path = report
        .write_to(&results_dir)
        .expect("results dir is writable");
    telemetry::info!(
        "ablation",
        "wrote run report",
        path = path.display().to_string()
    );
    let mut charts = vec![coolopt_experiments::energy_chart(&dashboard_segments)];
    charts.extend(coolopt_experiments::plant_charts("trace"));
    let dashboard_path = coolopt_experiments::write_dashboard(
        &results_dir,
        &report.name,
        "coolopt ablation",
        &format!("{machines} machines, seed {seed} — holistic #8 over a 4 h diurnal trace"),
        &charts,
    )
    .expect("results dir is writable");
    telemetry::info!(
        "ablation",
        "wrote energy dashboard",
        path = dashboard_path.display().to_string()
    );
    if telemetry::metrics_enabled() {
        let trace_path = results_dir.join(format!("trace_{}.json", report.name));
        std::fs::write(&trace_path, telemetry::flight_snapshot().to_chrome_json())
            .expect("results dir is writable");
        telemetry::info!(
            "ablation",
            "wrote chrome trace",
            path = trace_path.display().to_string()
        );
    }
    if json {
        println!("{}", report.to_json());
    } else if !telemetry::events_quiet() {
        println!("{}", report.render_table());
    }
}
