//! Regenerates every table and figure of the paper on the simulated
//! 20-machine testbed and prints them (ASCII + savings summary), then runs
//! a short online-replanning trace plus its analytic replay and emits the
//! schema-stable telemetry run report.
//!
//! ```text
//! cargo run --release -p coolopt-experiments --bin reproduce -- \
//!     [seed] [--scenario FILE] [--csv DIR] [--results DIR] [--smoke] \
//!     [--json] [--quiet]
//! ```
//!
//! * `--scenario FILE` — drive a scenario document instead of the built-in
//!   preset. Single-zone documents run the full pipeline on the
//!   materialized room (bit-identical to the preset path for the shipped
//!   `scenarios/testbed_rack20.json`); multi-zone documents run the
//!   per-zone-vs-uniform set-point experiment instead;
//! * `--csv DIR` — additionally write every figure's data as
//!   `DIR/<figure-id>.csv`;
//! * `--results DIR` — where the run report lands (default `results/`);
//! * `--smoke` — CI-sized run: an 8-machine testbed, a reduced
//!   method × load grid, no profiling staircases, a 1 h trace;
//! * `--json` — machine-readable mode: progress events become JSON lines
//!   on stderr and stdout carries exactly one JSON document, the run
//!   report (also written under `--results`);
//! * `--quiet` — only warnings and errors on stderr.

use coolopt_alloc::{Method, Strategy};
use coolopt_experiments::harness::scenario_planner;
use coolopt_experiments::runtime::{run_load_trace_with, sinusoidal_trace, RuntimeOptions};
use coolopt_experiments::{
    figures, render_figure, render_multizone, replay_trace_with, run_multizone, run_sweep,
    savings_summary, to_csv, FigureData, HealthSection, MultiZoneOptions, MultiZoneSection,
    ReplayOptions, ReplaySection, RunReport, ScenarioSection, SweepOptions, Testbed, TraceSection,
};
use coolopt_scenario::Scenario;
use coolopt_sim::HealthConfig;
use coolopt_telemetry::{self as telemetry, SinkMode};
use coolopt_units::Seconds;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
    };
    let smoke = flag("--smoke");
    let json = flag("--json");
    if flag("--quiet") {
        telemetry::init_events(SinkMode::Quiet);
    } else if json {
        telemetry::init_events(SinkMode::Json);
    }
    let csv_dir = value_of("--csv");
    let results_dir = value_of("--results").unwrap_or_else(|| PathBuf::from("results"));
    let scenario_path = value_of("--scenario");
    let seed: u64 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let prev = i.checked_sub(1).and_then(|p| args.get(p));
            !a.starts_with("--")
                && !matches!(
                    prev.map(String::as_str),
                    Some("--csv") | Some("--results") | Some("--scenario")
                )
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(42);
    // In --json mode stdout carries exactly one document: the run report.
    let show = !json;

    let loaded: Option<Scenario> = scenario_path.as_ref().map(|path| {
        let scenario = Scenario::load(path)
            .unwrap_or_else(|e| panic!("scenario {} rejected: {e}", path.display()));
        telemetry::info!(
            "reproduce",
            "loaded scenario document",
            path = path.display().to_string(),
            name = scenario.name.clone(),
            sha256 = scenario.content_hash(),
            zones = scenario.zone_count(),
        );
        scenario
    });

    // Multi-zone documents run the per-zone-vs-uniform set-point experiment
    // instead of the (single-room) paper pipeline.
    if let Some(scenario) = loaded.as_ref().filter(|s| !s.is_single_zone()) {
        let mz_options = MultiZoneOptions {
            window: Seconds::new(if smoke { 120.0 } else { 300.0 }),
            tsdb_prefix: Some("multizone"),
            ..MultiZoneOptions::default()
        };
        let outcome = run_multizone(scenario, &mz_options).expect("multi-zone experiment runs");
        if show {
            println!("{}", render_multizone(scenario, &outcome));
        }
        let report = RunReport {
            name: if smoke {
                "reproduce_smoke"
            } else {
                "reproduce"
            }
            .to_string(),
            seed: scenario.seed,
            scenario: Some(ScenarioSection::from_scenario(scenario)),
            metrics_enabled: telemetry::metrics_enabled(),
            flight_dropped: coolopt_experiments::export_flight_dropped(),
            metrics: telemetry::snapshot(),
            trace: None,
            replay: None,
            health: outcome.per_zone.health.clone().map(|report| HealthSection {
                report,
                drift_demo: None,
            }),
            multizone: Some(MultiZoneSection::from_outcome(&outcome)),
        };
        let subtitle = format!(
            "{} zones, {} machines, load {:.1} — per-zone vs uniform set points",
            outcome.zones, outcome.machines, outcome.total_load
        );
        emit_dashboard(
            &report.name,
            &results_dir,
            &subtitle,
            coolopt_experiments::plant_charts("multizone"),
            "reproduce",
        );
        emit_report(&report, &results_dir, json, "reproduce");
        return;
    }

    let emit = |fig: &FigureData| {
        if show {
            println!("{}", render_figure(fig));
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("csv directory is creatable");
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, to_csv(fig)).expect("csv file is writable");
            telemetry::info!(
                "reproduce",
                "wrote figure csv",
                path = path.display().to_string()
            );
        }
    };

    let machines = loaded
        .as_ref()
        .map(Scenario::total_machines)
        .unwrap_or(if smoke { 8 } else { 20 });
    telemetry::info!(
        "reproduce",
        "building and profiling the testbed",
        machines = machines,
        seed = seed,
        smoke = smoke,
    );
    let mut testbed = match &loaded {
        Some(scenario) => {
            Testbed::from_scenario(scenario).expect("profiling the scenario testbed succeeds")
        }
        None => {
            Testbed::build_sized(machines, seed).expect("profiling the preset testbed succeeds")
        }
    };
    // The document's own seed governs a loaded scenario's streams; the run
    // report records the seed that actually drove the room.
    let seed = testbed.scenario.seed;
    let model = &testbed.profile.model;
    telemetry::info!(
        "reproduce",
        "fitted power model",
        model = model.power().to_string(),
        r2 = testbed.profile.power.r2,
    );
    telemetry::info!(
        "reproduce",
        "fitted cooling model",
        slope_w_per_k = model.cooling().cf(),
        supply_ceiling_celsius = testbed.profile.cooling.t_ac_max.as_celsius(),
    );

    emit(&figures::table1());
    emit(&figures::fig4());

    if !smoke {
        telemetry::info!("reproduce", "running the Fig. 2/3 profiling staircases");
        let f2 = figures::fig2(&mut testbed, Seconds::new(600.0));
        let f3 = figures::fig3(&mut testbed, Seconds::new(600.0));
        emit(&f2);
        emit(&f3);
    }

    let (methods, options) = if smoke {
        let methods: Vec<Method> = [1, 4, 7, 8].map(Method::numbered).to_vec();
        let options = SweepOptions {
            load_percents: vec![30.0, 60.0, 90.0],
            ..SweepOptions::default()
        };
        (methods, options)
    } else {
        let mut methods = Method::all();
        methods.push(Method::new(Strategy::Even, true, true));
        (methods, SweepOptions::default())
    };
    telemetry::info!(
        "reproduce",
        "sweeping methods x loads (the long part)",
        methods = methods.len(),
        loads = options.load_percents.len(),
    );
    let sweep = run_sweep(&mut testbed, &methods, &options);

    for fig in [
        figures::fig5(&sweep),
        figures::fig6(&sweep),
        figures::fig7(&sweep),
        figures::fig8(&sweep),
        figures::fig9(&sweep),
        figures::fig10(&sweep),
    ] {
        emit(&fig);
    }

    if show {
        if let Some(s) = savings_summary(&sweep, Method::numbered(8), Method::numbered(7)) {
            println!("Optimal (#8) vs best baseline (#7): {s}");
        }
        if let Some(s) = savings_summary(&sweep, Method::numbered(6), Method::numbered(4)) {
            println!("Optimal (#6) vs Even (#4), no consolidation: {s}");
        }
        if let Some(s) = savings_summary(&sweep, Method::numbered(8), Method::numbered(1)) {
            println!("Optimal (#8) vs naive Even (#1): {s}");
        }
    }

    let violations: Vec<String> = sweep
        .iter()
        .filter(|r| !r.temps_ok || !r.throughput_ok || !r.measurement.settled)
        .map(|r| {
            format!(
                "{} at {:.0} % (temps_ok={}, throughput_ok={}, settled={})",
                r.plan.method, r.load_percent, r.temps_ok, r.throughput_ok, r.measurement.settled
            )
        })
        .collect();
    if violations.is_empty() {
        telemetry::info!(
            "reproduce",
            "constraints satisfied in every run",
            runs = sweep.len()
        );
        if show {
            println!("constraints: every run satisfied T_max and throughput.");
        }
    } else {
        if show {
            println!("constraint violations:");
        }
        for v in &violations {
            telemetry::warn!("reproduce", "constraint violation", run = v.clone());
            if show {
                println!("  {v}");
            }
        }
    }

    // --- online replanning trace + analytic replay --------------------------
    // Drives the holistic method over a diurnal trace on the numeric
    // substrate, then replays the same controller on the analytic linear-RC
    // model, so the run report carries replan counts, the per-plateau
    // computing/cooling energy split, the guard margin, and the propagator
    // cache hit rate.
    let trace_method = Method::numbered(8);
    let (duration, steps) = if smoke {
        (Seconds::new(3_600.0), 8)
    } else {
        (Seconds::new(14_400.0), 24)
    };
    telemetry::info!(
        "reproduce",
        "running the online-replanning trace and its analytic replay",
        plateaus = steps,
        duration_seconds = duration.as_secs_f64(),
    );
    let trace = sinusoidal_trace(machines, 0.2, 0.8, duration, steps);
    let planner = scenario_planner(&testbed, &options);
    let trace_outcome = run_load_trace_with(
        &planner,
        &mut testbed,
        trace_method,
        &trace,
        duration,
        &RuntimeOptions {
            // Streams computing/cooling power and the T_max margin into
            // the time-series store, feeding the HTML dashboard below.
            tsdb_prefix: Some("trace".to_string()),
            ..RuntimeOptions::default()
        },
    )
    .expect("trace run succeeds");
    let replay_outcome = replay_trace_with(
        &planner,
        &testbed.profile.model,
        trace_method,
        &trace,
        duration,
        &ReplayOptions::default(),
    )
    .expect("analytic replay succeeds");

    // --- model-health watchdog: stock verdict + drifted demo ----------------
    // The stock trace above should report healthy residuals; a second, short
    // trace with an injected 3 K model bias demonstrates that the drift
    // detector actually trips when the fitted model goes stale.
    let health = trace_outcome.health.clone().map(|report| {
        let bias_kelvin = 8.0;
        telemetry::info!(
            "reproduce",
            "running the drifted-model health demo",
            bias_kelvin = bias_kelvin,
        );
        let demo_duration = Seconds::new(1_800.0);
        let demo_trace = sinusoidal_trace(machines, 0.4, 0.6, demo_duration, 2);
        let drift_options = RuntimeOptions {
            health: HealthConfig {
                inject_bias_kelvin: bias_kelvin,
                ..HealthConfig::default()
            },
            ..RuntimeOptions::default()
        };
        let drift_demo = run_load_trace_with(
            &planner,
            &mut testbed,
            trace_method,
            &demo_trace,
            demo_duration,
            &drift_options,
        )
        .ok()
        .and_then(|outcome| outcome.health);
        HealthSection { report, drift_demo }
    });

    let report = RunReport {
        name: if smoke {
            "reproduce_smoke"
        } else {
            "reproduce"
        }
        .to_string(),
        seed,
        scenario: Some(ScenarioSection::from_scenario(&testbed.scenario)),
        metrics_enabled: telemetry::metrics_enabled(),
        flight_dropped: coolopt_experiments::export_flight_dropped(),
        metrics: telemetry::snapshot(),
        trace: Some(TraceSection::from_outcome(
            trace_method.to_string(),
            &trace_outcome,
        )),
        replay: Some(ReplaySection::from_outcome(
            trace_method.to_string(),
            &replay_outcome,
        )),
        health,
        multizone: None,
    };
    let mut charts = vec![coolopt_experiments::energy_chart(&trace_outcome.segments)];
    charts.extend(coolopt_experiments::plant_charts("trace"));
    let subtitle = format!(
        "{machines} machines, seed {seed} — online replanning over a {:.1} h diurnal trace",
        duration.as_secs_f64() / 3600.0
    );
    emit_dashboard(&report.name, &results_dir, &subtitle, charts, "reproduce");
    emit_report(&report, &results_dir, json, "reproduce");
}

/// Writes the self-contained HTML energy dashboard next to the run report.
fn emit_dashboard(
    name: &str,
    results_dir: &std::path::Path,
    subtitle: &str,
    charts: Vec<coolopt_telemetry::Chart>,
    source: &str,
) {
    let path = coolopt_experiments::write_dashboard(
        results_dir,
        name,
        &format!("coolopt {name}"),
        subtitle,
        &charts,
    )
    .expect("results dir is writable");
    telemetry::info!(
        source,
        "wrote energy dashboard",
        path = path.display().to_string()
    );
}

/// Writes the run report (and, with metrics compiled in, the Chrome-trace
/// artifact captured by the flight recorder) and prints the stdout
/// document/table.
fn emit_report(report: &RunReport, results_dir: &std::path::Path, json: bool, source: &str) {
    let path = report
        .write_to(results_dir)
        .expect("results dir is writable");
    telemetry::info!(
        source,
        "wrote run report",
        path = path.display().to_string()
    );
    if telemetry::metrics_enabled() {
        let trace_path = results_dir.join(format!("trace_{}.json", report.name));
        std::fs::write(&trace_path, telemetry::flight_snapshot().to_chrome_json())
            .expect("results dir is writable");
        telemetry::info!(
            source,
            "wrote chrome trace",
            path = trace_path.display().to_string()
        );
    }
    if json {
        println!("{}", report.to_json());
    } else if !telemetry::events_quiet() {
        println!("{}", report.render_table());
    }
}
