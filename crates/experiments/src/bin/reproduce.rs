//! Regenerates every table and figure of the paper on the simulated
//! 20-machine testbed and prints them (ASCII + savings summary).
//!
//! ```text
//! cargo run --release -p coolopt-experiments --bin reproduce [seed] [--csv DIR]
//! ```
//!
//! With `--csv DIR`, every figure's data is additionally written as
//! `DIR/<figure-id>.csv`.

use coolopt_alloc::{Method, Strategy};
use coolopt_experiments::{
    figures, render_figure, run_sweep, savings_summary, to_csv, FigureData, SweepOptions, Testbed,
};
use coolopt_units::Seconds;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let seed: u64 = args
        .iter()
        .find(|a| *a != "--csv" && a.parse::<u64>().is_ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let emit = |fig: &FigureData| {
        println!("{}", render_figure(fig));
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("csv directory is creatable");
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, to_csv(fig)).expect("csv file is writable");
            eprintln!("wrote {}", path.display());
        }
    };

    eprintln!("building and profiling the 20-machine testbed (seed {seed})…");
    let mut testbed = Testbed::build(seed).expect("profiling the preset testbed succeeds");
    let model = &testbed.profile.model;
    eprintln!(
        "fitted power model: {} (r² = {:.4})",
        model.power(),
        testbed.profile.power.r2
    );
    eprintln!(
        "fitted cooling slope: {:.1} W/K, supply ceiling {:.2} °C",
        model.cooling().cf(),
        testbed.profile.cooling.t_ac_max.as_celsius()
    );

    emit(&figures::table1());
    emit(&figures::fig4());

    eprintln!("running the Fig. 2/3 profiling staircases…");
    let f2 = figures::fig2(&mut testbed, Seconds::new(600.0));
    let f3 = figures::fig3(&mut testbed, Seconds::new(600.0));
    emit(&f2);
    emit(&f3);

    eprintln!("sweeping all methods × loads 10–100 % (this is the long part)…");
    let mut methods = Method::all();
    methods.push(Method::new(Strategy::Even, true, true));
    let sweep = run_sweep(&mut testbed, &methods, &SweepOptions::default());

    for fig in [
        figures::fig5(&sweep),
        figures::fig6(&sweep),
        figures::fig7(&sweep),
        figures::fig8(&sweep),
        figures::fig9(&sweep),
        figures::fig10(&sweep),
    ] {
        emit(&fig);
    }

    if let Some(s) = savings_summary(&sweep, Method::numbered(8), Method::numbered(7)) {
        println!("Optimal (#8) vs best baseline (#7): {s}");
    }
    if let Some(s) = savings_summary(&sweep, Method::numbered(6), Method::numbered(4)) {
        println!("Optimal (#6) vs Even (#4), no consolidation: {s}");
    }
    if let Some(s) = savings_summary(&sweep, Method::numbered(8), Method::numbered(1)) {
        println!("Optimal (#8) vs naive Even (#1): {s}");
    }

    let violations: Vec<String> = sweep
        .iter()
        .filter(|r| !r.temps_ok || !r.throughput_ok || !r.measurement.settled)
        .map(|r| {
            format!(
                "{} at {:.0} % (temps_ok={}, throughput_ok={}, settled={})",
                r.plan.method, r.load_percent, r.temps_ok, r.throughput_ok, r.measurement.settled
            )
        })
        .collect();
    if violations.is_empty() {
        println!("constraints: every run satisfied T_max and throughput.");
    } else {
        println!("constraint violations:");
        for v in violations {
            println!("  {v}");
        }
    }
}
