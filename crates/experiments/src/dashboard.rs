//! Self-contained HTML energy dashboards for experiment runs.
//!
//! Charts are assembled from two sources: the run outcome itself (the
//! per-plateau computing/cooling energy split — available in every build)
//! and the process-global [time-series store](coolopt_telemetry::tsdb)
//! (power and `T_max`-margin series streamed by
//! [`RuntimeOptions::tsdb_prefix`](crate::runtime::RuntimeOptions::tsdb_prefix)
//! and
//! [`MultiZoneOptions::tsdb_prefix`](crate::multizone::MultiZoneOptions::tsdb_prefix)
//! — empty without the `telemetry` feature, which renders as explicit
//! placeholders rather than missing charts). The rendered file is one
//! dependency-free HTML document with inline SVG and no scripts; see
//! [`coolopt_telemetry::render_dashboard`].

use crate::runtime::SegmentEnergy;
use coolopt_telemetry::{self as telemetry, Chart, ChartSeries, RangeQuery};
use std::path::{Path, PathBuf};

/// The per-plateau "Computing vs cooling energy" chart, from a trace
/// outcome's segment split. The x axis is plateau start time; one line per
/// energy share.
pub fn energy_chart(segments: &[SegmentEnergy]) -> Chart {
    let points = |f: fn(&SegmentEnergy) -> f64| -> Vec<(i64, f64)> {
        segments
            .iter()
            .map(|s| ((s.start.as_secs_f64() * 1000.0) as i64, f(s)))
            .collect()
    };
    Chart {
        title: "Computing vs cooling energy".to_string(),
        unit: "kWh per plateau".to_string(),
        series: vec![
            ChartSeries {
                label: "computing".to_string(),
                points: points(|s| s.computing.as_kwh()),
            },
            ChartSeries {
                label: "cooling".to_string(),
                points: points(|s| s.cooling.as_kwh()),
            },
        ],
    }
}

/// The plant charts for every store series under `prefix`: one power chart
/// (all `*_watts` series — computing vs cooling, per-zone where recorded)
/// and one "T_max margin" chart. Both charts are always present; without
/// the `telemetry` feature (or before any run streamed samples) they render
/// as placeholders.
pub fn plant_charts(prefix: &str) -> Vec<Chart> {
    let results = telemetry::tsdb().query_matching(&format!("{prefix}.*"), &RangeQuery::default());
    let mut power: Vec<ChartSeries> = Vec::new();
    let mut margin: Vec<ChartSeries> = Vec::new();
    for result in results {
        let label = result
            .name
            .strip_prefix(prefix)
            .unwrap_or(&result.name)
            .trim_start_matches('.')
            .to_string();
        let series = ChartSeries {
            label,
            points: result.points,
        };
        if result.name.ends_with("margin_kelvin") {
            margin.push(series);
        } else if result.name.ends_with("_watts") {
            power.push(series);
        }
    }
    vec![
        Chart {
            title: "Computing vs cooling power".to_string(),
            unit: "W".to_string(),
            series: power,
        },
        Chart {
            title: "T_max margin".to_string(),
            unit: "K".to_string(),
            series: margin,
        },
    ]
}

/// Renders `charts` and writes `dashboard_<name>.html` under `dir`,
/// creating the directory as needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_dashboard(
    dir: &Path,
    name: &str,
    title: &str,
    subtitle: &str,
    charts: &[Chart],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("dashboard_{name}.html"));
    std::fs::write(&path, telemetry::render_dashboard(title, subtitle, charts))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_units::{Joules, Seconds};

    fn segment(start: f64, computing: f64, cooling: f64) -> SegmentEnergy {
        SegmentEnergy {
            start: Seconds::new(start),
            load: 1.0,
            computing: Joules::new(computing),
            cooling: Joules::new(cooling),
        }
    }

    #[test]
    fn energy_chart_splits_computing_and_cooling() {
        let chart = energy_chart(&[segment(0.0, 3.6e6, 1.8e6), segment(600.0, 7.2e6, 3.6e6)]);
        assert_eq!(chart.title, "Computing vs cooling energy");
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].label, "computing");
        assert_eq!(chart.series[0].points, vec![(0, 1.0), (600_000, 2.0)]);
        assert_eq!(chart.series[1].points, vec![(0, 0.5), (600_000, 1.0)]);
    }

    #[test]
    fn plant_charts_always_carry_power_and_margin() {
        // Unique prefix: the store is process-global and shared with other
        // tests.
        let charts = plant_charts("dash_test_nothing_recorded");
        assert_eq!(charts.len(), 2);
        assert_eq!(charts[0].title, "Computing vs cooling power");
        assert_eq!(charts[1].title, "T_max margin");
        assert!(charts.iter().all(|c| c.series.is_empty()));

        if telemetry::metrics_enabled() {
            let db = telemetry::tsdb();
            for i in 0..10i64 {
                db.append("dash_test_plant.computing_watts", i * 1000, 100.0);
                db.append("dash_test_plant.cooling_watts", i * 1000, 40.0);
                db.append("dash_test_plant.margin_kelvin", i * 1000, 5.0);
            }
            let charts = plant_charts("dash_test_plant");
            assert_eq!(charts[0].series.len(), 2, "both power series plotted");
            assert_eq!(charts[1].series.len(), 1);
            assert_eq!(charts[1].series[0].label, "margin_kelvin");
            assert_eq!(charts[1].series[0].points.len(), 10);
        }
    }

    #[test]
    fn write_dashboard_lands_the_named_artifact() {
        let dir = std::env::temp_dir().join("coolopt_dash_test");
        let chart = energy_chart(&[segment(0.0, 3.6e6, 1.8e6)]);
        let path = write_dashboard(&dir, "unit", "Unit run", "one plateau", &[chart]).unwrap();
        assert!(path.ends_with("dashboard_unit.html"));
        let html = std::fs::read_to_string(&path).unwrap();
        assert!(html.contains("Computing vs cooling energy"));
        assert!(html.contains("<svg"));
        assert!(!html.contains("<script"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
