//! The evaluation testbed: simulated rack + fitted models.

use coolopt_profiling::{profile_room_full, ProfileError, ProfileOptions, RoomProfile};
use coolopt_room::{presets, MachineRoom};

/// A profiled, ready-to-evaluate machine room.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The simulated room (the paper's rack of 20 Dell R210s).
    pub room: MachineRoom,
    /// Everything profiling produced (model, fits, calibrations).
    pub profile: RoomProfile,
}

impl Testbed {
    /// Builds the paper's 20-machine testbed and profiles it.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] when profiling fails (it does not on the
    /// shipped presets; the error path exists for custom rooms).
    pub fn build(seed: u64) -> Result<Testbed, ProfileError> {
        Testbed::build_sized(20, seed)
    }

    /// Builds a smaller rack (used by tests and quick demos).
    ///
    /// # Errors
    ///
    /// See [`Testbed::build`].
    pub fn build_sized(machines: usize, seed: u64) -> Result<Testbed, ProfileError> {
        let mut room = presets::parametric_rack(machines, seed);
        let profile = profile_room_full(&mut room, &ProfileOptions::default())?;
        Ok(Testbed { room, profile })
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.room.len()
    }

    /// `true` for an empty testbed (never after construction).
    pub fn is_empty(&self) -> bool {
        self.room.is_empty()
    }

    /// Converts a load percentage (the paper's x-axes run 10–100 %) into the
    /// absolute total load `L` for this rack size.
    pub fn load_from_percent(&self, percent: f64) -> f64 {
        self.len() as f64 * percent / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_profiles_a_small_testbed() {
        let tb = Testbed::build_sized(3, 5).unwrap();
        assert_eq!(tb.len(), 3);
        assert!(!tb.is_empty());
        assert_eq!(tb.profile.model.len(), 3);
        assert!((tb.load_from_percent(50.0) - 1.5).abs() < 1e-12);
    }
}
