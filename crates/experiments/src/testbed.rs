//! The evaluation testbed: simulated rack + fitted models.

use coolopt_profiling::{profile_room_full, ProfileError, ProfileOptions, RoomProfile};
use coolopt_room::room::InvalidRoom;
use coolopt_room::{materialize_machine_room, presets, MachineRoom};
use coolopt_scenario::{RackOptions, Scenario};
use std::fmt;

/// Why a testbed could not be built from a scenario document.
#[derive(Debug)]
pub enum TestbedError {
    /// The scenario failed to materialize into a consistent room.
    Room(InvalidRoom),
    /// Profiling the materialized room failed.
    Profile(ProfileError),
    /// The scenario has several zones; the single-room testbed pipeline
    /// cannot profile it (drive it through the multi-zone experiment
    /// instead).
    MultiZone {
        /// Zone count of the offending scenario.
        zones: usize,
    },
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::Room(e) => write!(f, "scenario does not materialize: {e}"),
            TestbedError::Profile(e) => write!(f, "profiling failed: {e}"),
            TestbedError::MultiZone { zones } => write!(
                f,
                "scenario has {zones} zones; the testbed pipeline is single-zone \
                 (use the multi-zone experiment)"
            ),
        }
    }
}

impl std::error::Error for TestbedError {}

impl From<InvalidRoom> for TestbedError {
    fn from(e: InvalidRoom) -> Self {
        TestbedError::Room(e)
    }
}

impl From<ProfileError> for TestbedError {
    fn from(e: ProfileError) -> Self {
        TestbedError::Profile(e)
    }
}

/// A profiled, ready-to-evaluate machine room.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The simulated room (the paper's rack of 20 Dell R210s).
    pub room: MachineRoom,
    /// Everything profiling produced (model, fits, calibrations).
    pub profile: RoomProfile,
    /// The scenario document the room was materialized from (run reports
    /// record its name and content hash).
    pub scenario: Scenario,
}

impl Testbed {
    /// Builds the paper's 20-machine testbed and profiles it.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] when profiling fails (it does not on the
    /// shipped presets; the error path exists for custom rooms).
    pub fn build(seed: u64) -> Result<Testbed, ProfileError> {
        Testbed::build_sized(20, seed)
    }

    /// Builds a smaller rack (used by tests and quick demos).
    ///
    /// # Errors
    ///
    /// See [`Testbed::build`].
    pub fn build_sized(machines: usize, seed: u64) -> Result<Testbed, ProfileError> {
        Testbed::from_options(RackOptions {
            machines,
            seed,
            ..RackOptions::default()
        })
    }

    /// Builds a rack with explicit air-distribution knobs (the ablation
    /// studies' entry point).
    ///
    /// # Errors
    ///
    /// See [`Testbed::build`].
    ///
    /// # Panics
    ///
    /// Panics on unphysical options (same rules as
    /// [`presets::parametric_rack_with`]).
    pub fn from_options(options: RackOptions) -> Result<Testbed, ProfileError> {
        let scenario = coolopt_scenario::presets::single_zone(options);
        let mut room = presets::parametric_rack_with(options);
        let profile = profile_room_full(&mut room, &ProfileOptions::default())?;
        Ok(Testbed {
            room,
            profile,
            scenario,
        })
    }

    /// Builds and profiles a testbed from a **single-zone** scenario
    /// document (the `--scenario` path of the experiment binaries). For
    /// documents emitted by the presets this is bit-identical to
    /// [`Testbed::build_sized`] — the identity is pinned by tests.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError`] for multi-zone documents, rooms that fail
    /// component validation, and profiling failures.
    pub fn from_scenario(scenario: &Scenario) -> Result<Testbed, TestbedError> {
        if !scenario.is_single_zone() {
            return Err(TestbedError::MultiZone {
                zones: scenario.zone_count(),
            });
        }
        let mut room = materialize_machine_room(scenario)?;
        let profile = profile_room_full(&mut room, &ProfileOptions::default())?;
        Ok(Testbed {
            room,
            profile,
            scenario: scenario.clone(),
        })
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.room.len()
    }

    /// `true` for an empty testbed (never after construction).
    pub fn is_empty(&self) -> bool {
        self.room.is_empty()
    }

    /// Converts a load percentage (the paper's x-axes run 10–100 %) into the
    /// absolute total load `L` for this rack size.
    pub fn load_from_percent(&self, percent: f64) -> f64 {
        self.len() as f64 * percent / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_profiles_a_small_testbed() {
        let tb = Testbed::build_sized(3, 5).unwrap();
        assert_eq!(tb.len(), 3);
        assert!(!tb.is_empty());
        assert_eq!(tb.profile.model.len(), 3);
        assert!((tb.load_from_percent(50.0) - 1.5).abs() < 1e-12);
        assert_eq!(tb.scenario.total_machines(), 3);
        assert_eq!(tb.scenario.seed, 5);
    }

    #[test]
    fn scenario_path_profiles_to_the_same_model_as_the_code_path() {
        let scenario = coolopt_scenario::presets::single_zone(RackOptions {
            machines: 4,
            seed: 11,
            ..RackOptions::default()
        });
        let a = Testbed::from_scenario(&scenario).unwrap();
        let b = Testbed::build_sized(4, 11).unwrap();
        // Same room → same profiling trajectory → bit-identical fit.
        assert_eq!(a.profile.model.power().w1(), b.profile.model.power().w1());
        assert_eq!(a.profile.model.power().w2(), b.profile.model.power().w2());
        for i in 0..4 {
            assert_eq!(
                a.profile.model.thermal(i).alpha(),
                b.profile.model.thermal(i).alpha()
            );
        }
    }

    #[test]
    fn multi_zone_documents_are_rejected_with_a_clear_error() {
        let scenario = coolopt_scenario::presets::two_zone_hetero(0);
        match Testbed::from_scenario(&scenario) {
            Err(TestbedError::MultiZone { zones: 2 }) => {}
            other => panic!("expected MultiZone error, got {other:?}"),
        }
    }
}
