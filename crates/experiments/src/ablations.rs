//! Ablation studies: which ingredients of the holistic optimum actually
//! carry the savings, and how robust is it to the things the model gets
//! wrong?
//!
//! Three studies (all beyond the paper's own evaluation, but directly
//! motivated by its claims):
//!
//! * [`separate_vs_holistic`] — the paper's introduction argues that
//!   optimizing computing and cooling *separately* leaves energy on the
//!   table ("power struggles"). This study pits the separate optimum
//!   (fewest machines, thermally blind, cooling fixed afterwards) against
//!   the holistic one.
//! * [`guard_band_study`] — the planner keeps a guard band below `T_max` to
//!   absorb fitted-model error; sweeping it exposes the safety ↔ energy
//!   trade-off and measures how much the model actually errs.
//! * [`recirculation_study`] — rebuilds the room with stronger/weaker
//!   exhaust recirculation (physics the linear model does not represent)
//!   and re-runs the headline comparison, measuring how model mismatch
//!   erodes the savings.

use crate::figures::{FigureData, Series};
use crate::harness::{par_map_ordered, run_method_with, scenario_planner, SweepOptions};
use crate::savings::savings_summary;
use crate::testbed::Testbed;
use coolopt_alloc::{Method, Strategy};
use coolopt_profiling::{profile_room_full, ProfileOptions};
use coolopt_room::presets::{parametric_rack_with, RackOptions};
use coolopt_units::TempDelta;
use serde::{Deserialize, Serialize};

/// Holistic optimum (#8) vs the separate optimization of computing and
/// cooling, across loads.
pub fn separate_vs_holistic(testbed: &mut Testbed, options: &SweepOptions) -> FigureData {
    let separate = Method::new(Strategy::SeparateOpt, true, true);
    let holistic = Method::numbered(8);
    let planner = scenario_planner(testbed, options);
    let mut sep_points = Vec::new();
    let mut hol_points = Vec::new();
    for &pct in &options.load_percents {
        if let Ok(run) = run_method_with(&planner, testbed, separate, pct, options) {
            sep_points.push((pct, run.total_power().as_watts()));
        }
        if let Ok(run) = run_method_with(&planner, testbed, holistic, pct, options) {
            hol_points.push((pct, run.total_power().as_watts()));
        }
    }
    FigureData {
        id: "ablation_separate".into(),
        title: "Separate computing/cooling optimization vs holistic optimum".into(),
        axes: ("Load (%)".into(), "Power (W)".into()),
        series: vec![
            Series {
                label: "Separate".into(),
                points: sep_points,
            },
            Series {
                label: "Holistic (#8)".into(),
                points: hol_points,
            },
        ],
        text: None,
    }
}

/// One row of the guard-band study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardOutcome {
    /// Guard band (K below `T_max`) the planner used.
    pub guard_kelvin: f64,
    /// Measured total power (W).
    pub total_power: f64,
    /// Hottest CPU reading observed (°C).
    pub max_cpu_celsius: f64,
    /// Whether the *true* `T_max` was respected.
    pub safe: bool,
}

/// Sweeps the planner's guard band at a fixed method and load.
pub fn guard_band_study(
    testbed: &mut Testbed,
    method: Method,
    load_percent: f64,
    guards_kelvin: &[f64],
    base_options: &SweepOptions,
) -> Vec<GuardOutcome> {
    let t_max = testbed.profile.model.t_max();
    let scenarios: Vec<(f64, Testbed)> = guards_kelvin
        .iter()
        .map(|&g| (g, testbed.clone()))
        .collect();
    par_map_ordered(scenarios, |(g, mut tb)| {
        let options = SweepOptions {
            guard: TempDelta::from_kelvin(g),
            ..base_options.clone()
        };
        // Each guard changes the planner's effective model, so this
        // study necessarily builds one planner (one engine) per guard.
        let planner = scenario_planner(&tb, &options);
        run_method_with(&planner, &mut tb, method, load_percent, &options)
            .ok()
            .map(|run| GuardOutcome {
                guard_kelvin: g,
                total_power: run.total_power().as_watts(),
                max_cpu_celsius: run.measurement.max_cpu_temp_true.as_celsius(),
                safe: run.measurement.max_cpu_temp_true <= t_max,
            })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One row of the recirculation study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecirculationOutcome {
    /// Recirculation strength multiplier applied to the room.
    pub scale: f64,
    /// Mean savings of #8 over #7 (fraction).
    pub mean_savings: f64,
    /// Worst-case savings (fraction; negative = optimal lost somewhere).
    pub min_savings: f64,
    /// Mean thermal-fit r² across machines (how well the linear model held).
    pub mean_thermal_r2: f64,
}

/// Re-profiles and re-evaluates the headline comparison under scaled
/// exhaust-recirculation physics.
///
/// # Panics
///
/// Panics if a scaled room cannot be profiled (does not happen for scales
/// in `[0, 2]` with the shipped presets).
pub fn recirculation_study(
    machines: usize,
    seed: u64,
    scales: &[f64],
    options: &SweepOptions,
) -> Vec<RecirculationOutcome> {
    par_map_ordered(scales.to_vec(), |scale| {
        let rack_options = RackOptions {
            machines,
            seed,
            recirculation_scale: scale,
            ..RackOptions::default()
        };
        let scenario = coolopt_scenario::presets::single_zone(rack_options);
        let mut room = parametric_rack_with(rack_options);
        let profile = profile_room_full(&mut room, &ProfileOptions::default())
            .expect("scaled preset profiles cleanly");
        let mean_thermal_r2 =
            profile.thermal.r2.iter().sum::<f64>() / profile.thermal.r2.len() as f64;
        let mut testbed = Testbed {
            room,
            profile,
            scenario,
        };
        let planner = scenario_planner(&testbed, options);
        let mut sweep = crate::harness::Sweep::default();
        let methods = [Method::numbered(7), Method::numbered(8)];
        for &pct in &options.load_percents {
            for &m in &methods {
                if let Ok(run) = run_method_with(&planner, &mut testbed, m, pct, options) {
                    sweep.insert(m, pct, run);
                }
            }
        }
        let summary = savings_summary(&sweep, Method::numbered(8), Method::numbered(7))
            .expect("both methods ran");
        RecirculationOutcome {
            scale,
            mean_savings: summary.mean,
            min_savings: summary.min,
            mean_thermal_r2,
        }
    })
}

/// One row of the seed study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedOutcome {
    /// The testbed seed.
    pub seed: u64,
    /// Mean savings of #8 over #7 (fraction).
    pub mean_savings: f64,
    /// Best-case savings (fraction).
    pub max_savings: f64,
    /// Worst-case savings (fraction).
    pub min_savings: f64,
}

/// Re-runs the headline comparison on freshly drawn testbeds: how sensitive
/// is the result to the particular (randomized) rack instance?
///
/// # Panics
///
/// Panics if a seed's testbed cannot be profiled or both methods fail to
/// run (does not happen for the shipped presets).
pub fn seed_study(machines: usize, seeds: &[u64], options: &SweepOptions) -> Vec<SeedOutcome> {
    par_map_ordered(seeds.to_vec(), |seed| {
        let mut testbed =
            Testbed::build_sized(machines, seed).expect("preset testbed profiles cleanly");
        let planner = scenario_planner(&testbed, options);
        let mut sweep = crate::harness::Sweep::default();
        for &pct in &options.load_percents {
            for m in [Method::numbered(7), Method::numbered(8)] {
                if let Ok(run) = run_method_with(&planner, &mut testbed, m, pct, options) {
                    sweep.insert(m, pct, run);
                }
            }
        }
        let s = savings_summary(&sweep, Method::numbered(8), Method::numbered(7))
            .expect("both methods ran");
        SeedOutcome {
            seed,
            mean_savings: s.mean,
            max_savings: s.max,
            min_savings: s.min,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolopt_units::Seconds;

    fn quick_options() -> SweepOptions {
        SweepOptions {
            load_percents: vec![30.0, 70.0],
            settle_max: Seconds::new(3000.0),
            window: Seconds::new(40.0),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn holistic_never_loses_to_separate_optimization() {
        let mut tb = Testbed::build_sized(5, 29).unwrap();
        let fig = separate_vs_holistic(&mut tb, &quick_options());
        assert_eq!(fig.series.len(), 2);
        for (sep, hol) in fig.series[0].points.iter().zip(&fig.series[1].points) {
            assert!(
                hol.1 <= sep.1 * 1.02,
                "holistic {hol:?} lost to separate {sep:?}"
            );
        }
    }

    #[test]
    fn wider_guard_is_safer_but_costlier() {
        let mut tb = Testbed::build_sized(4, 31).unwrap();
        let outcomes = guard_band_study(
            &mut tb,
            Method::numbered(8),
            60.0,
            &[0.0, 3.0],
            &quick_options(),
        );
        assert_eq!(outcomes.len(), 2);
        // A wider guard never runs hotter.
        assert!(outcomes[1].max_cpu_celsius <= outcomes[0].max_cpu_celsius + 0.5);
    }
}
