//! Generators for every table and figure in the paper.
//!
//! Each generator returns a [`FigureData`]: labeled series of `(x, y)`
//! points that [`crate::report`] renders as ASCII or CSV. The mapping to the
//! paper:
//!
//! | artifact | generator | content |
//! |---|---|---|
//! | Table I | [`table1`] | physical variables and units |
//! | Fig. 1 | (see `coolopt-core::particles` and the consolidation example) | kinetic-particle instance |
//! | Fig. 2 | [`fig2`] | measured vs predicted power over a load staircase |
//! | Fig. 3 | [`fig3`] | measured vs predicted stable CPU temperature |
//! | Fig. 4 | [`fig4`] | the eight evaluation scenarios |
//! | Fig. 5 | [`fig5`] | same strategies with vs without consolidation |
//! | Fig. 6 | [`fig6`] | all eight methods vs load |
//! | Fig. 7 | [`fig7`] | AC control, no consolidation: Even / Bottom-up / Optimal |
//! | Fig. 8 | [`fig8`] | AC control + consolidation: Even / Bottom-up / Optimal |
//! | Fig. 9 | [`fig9`] | Bottom-up (#7) vs Optimal (#8) |
//! | Fig. 10 | [`fig10`] | average power of every method |

use crate::harness::Sweep;
use crate::testbed::Testbed;
use coolopt_alloc::{fig4_matrix, Method, Strategy};
use coolopt_profiling::LowPassFilter;
use coolopt_room::RoomObservation;
use coolopt_units::{Seconds, Temperature};
use serde::{Deserialize, Serialize};

/// One labeled line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// The data behind one regenerated figure or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Short identifier (`"fig6"`, `"table1"` …).
    pub id: String,
    /// Human title (the paper's caption, abridged).
    pub title: String,
    /// Axis labels `(x, y)`.
    pub axes: (String, String),
    /// The series.
    pub series: Vec<Series>,
    /// Free-form preformatted text (for table-like artifacts).
    pub text: Option<String>,
}

impl FigureData {
    fn plot(id: &str, title: &str, x: &str, y: &str, series: Vec<Series>) -> FigureData {
        FigureData {
            id: id.to_string(),
            title: title.to_string(),
            axes: (x.to_string(), y.to_string()),
            series,
            text: None,
        }
    }
}

fn method_series(sweep: &Sweep, method: Method, label: &str) -> Series {
    Series {
        label: label.to_string(),
        points: sweep.series(method),
    }
}

/// Table I: physical variables and their units.
pub fn table1() -> FigureData {
    FigureData {
        id: "table1".into(),
        title: "Physical variables and their units".into(),
        axes: (String::new(), String::new()),
        series: Vec::new(),
        text: Some(coolopt_units::table::render_table1()),
    }
}

/// Fig. 4: the evaluation-scenario matrix.
pub fn fig4() -> FigureData {
    FigureData {
        id: "fig4".into(),
        title: "Different evaluation scenarios".into(),
        axes: (String::new(), String::new()),
        series: Vec::new(),
        text: Some(fig4_matrix()),
    }
}

/// Fig. 2: measured vs predicted power consumption over the paper's load
/// staircase (0 → 10 → 25 → 50 → 75 % of capacity), sampled at 1 Hz on one
/// machine and low-pass filtered, with the regression model's prediction
/// alongside.
pub fn fig2(testbed: &mut Testbed, dwell: Seconds) -> FigureData {
    let levels = [0.0, 0.10, 0.25, 0.50, 0.75];
    let n = testbed.room.len();
    let power_model = *testbed.profile.model.power();
    let room = &mut testbed.room;
    room.force_all_on();
    room.set_set_point(Temperature::from_celsius(19.0));

    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    let mut filter = LowPassFilter::with_time_constant(Seconds::new(20.0), Seconds::new(1.0));
    let mut t = 0.0;
    for &level in &levels {
        room.set_loads(&vec![level; n]).expect("levels are valid");
        let steps = dwell.as_secs_f64().round() as usize;
        for _ in 0..steps {
            room.step();
            let watts = room.read_power(0).as_watts();
            measured.push((t, filter.apply(watts)));
            predicted.push((t, power_model.predict(level).as_watts()));
            t += 1.0;
        }
    }
    FigureData::plot(
        "fig2",
        "Measured vs predicted power consumption",
        "Time (s)",
        "Power (W)",
        vec![
            Series {
                label: "Measured".into(),
                points: measured,
            },
            Series {
                label: "Predicted".into(),
                points: predicted,
            },
        ],
    )
}

/// Fig. 3: measured vs predicted stable CPU temperature for one server as
/// load steps through the staircase at a fixed set point.
pub fn fig3(testbed: &mut Testbed, dwell: Seconds) -> FigureData {
    let levels = [0.0, 0.25, 0.50, 0.75, 1.0];
    let n = testbed.room.len();
    let model = testbed.profile.model.clone();
    let room = &mut testbed.room;
    room.force_all_on();
    room.set_set_point(Temperature::from_celsius(19.0));

    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    let mut filter = LowPassFilter::with_time_constant(Seconds::new(30.0), Seconds::new(1.0));
    let mut t = 0.0;
    for &level in &levels {
        room.set_loads(&vec![level; n]).expect("levels are valid");
        let steps = dwell.as_secs_f64().round() as usize;
        for _ in 0..steps {
            room.step();
            let cpu = room.read_cpu_temp(0).as_celsius();
            measured.push((t, filter.apply(cpu)));
            let obs = RoomObservation::capture(room);
            let pred = model
                .thermal(0)
                .predict(obs.t_supply, obs.server_powers[0])
                .as_celsius();
            predicted.push((t, pred));
            t += 1.0;
        }
    }
    FigureData::plot(
        "fig3",
        "Stable temperature prediction vs measurement",
        "Time (s)",
        "CPU temperature (°C)",
        vec![
            Series {
                label: "Measured".into(),
                points: measured,
            },
            Series {
                label: "Predicted".into(),
                points: predicted,
            },
        ],
    )
}

/// Fig. 5: each strategy with and without consolidation (#2 vs #3, #5 vs #7,
/// #6 vs #8).
pub fn fig5(sweep: &Sweep) -> FigureData {
    FigureData::plot(
        "fig5",
        "Comparison of similar methods with and without consolidation",
        "Load (%)",
        "Power (W)",
        vec![
            method_series(sweep, Method::numbered(2), "#2"),
            method_series(sweep, Method::numbered(3), "#3"),
            method_series(sweep, Method::numbered(5), "#5"),
            method_series(sweep, Method::numbered(7), "#7"),
            method_series(sweep, Method::numbered(6), "#6"),
            method_series(sweep, Method::numbered(8), "#8"),
        ],
    )
}

/// Fig. 6: all eight methods vs total load.
pub fn fig6(sweep: &Sweep) -> FigureData {
    FigureData::plot(
        "fig6",
        "Power consumption of all methods vs total load",
        "Load (%)",
        "Power (W)",
        (1..=8)
            .map(|n| method_series(sweep, Method::numbered(n), &format!("#{n}")))
            .collect(),
    )
}

/// Fig. 7: AC control without consolidation — Even (#4), Bottom-up (#5),
/// Optimal (#6).
pub fn fig7(sweep: &Sweep) -> FigureData {
    FigureData::plot(
        "fig7",
        "AC control, no consolidation: load-distribution strategies",
        "Load (%)",
        "Power (W)",
        vec![
            method_series(sweep, Method::numbered(4), "Even"),
            method_series(sweep, Method::numbered(5), "Bottom-up"),
            method_series(sweep, Method::numbered(6), "Optimal"),
        ],
    )
}

/// Fig. 8: AC control with consolidation — Even (unnumbered in Fig. 4),
/// Bottom-up (#7), Optimal (#8).
pub fn fig8(sweep: &Sweep) -> FigureData {
    FigureData::plot(
        "fig8",
        "AC control, consolidation: load-distribution strategies",
        "Load (%)",
        "Power (W)",
        vec![
            method_series(sweep, Method::new(Strategy::Even, true, true), "Even"),
            method_series(sweep, Method::numbered(7), "Bottom-up"),
            method_series(sweep, Method::numbered(8), "Optimal"),
        ],
    )
}

/// Fig. 9: the head-to-head the paper summarizes — Bottom-up (#7) vs
/// Optimal (#8).
pub fn fig9(sweep: &Sweep) -> FigureData {
    FigureData::plot(
        "fig9",
        "Bottom-up (#7) vs Optimal (#8)",
        "Load (%)",
        "Power (W)",
        vec![
            method_series(sweep, Method::numbered(7), "Bottom-up"),
            method_series(sweep, Method::numbered(8), "Optimal"),
        ],
    )
}

/// Fig. 10: average measured power of every method across the load sweep.
pub fn fig10(sweep: &Sweep) -> FigureData {
    let points: Vec<(f64, f64)> = (1..=8)
        .filter_map(|n| {
            sweep
                .mean_power(Method::numbered(n))
                .map(|w| (n as f64, w.as_watts()))
        })
        .collect();
    FigureData::plot(
        "fig10",
        "Average power of all methods",
        "Method #",
        "Average power (W)",
        vec![Series {
            label: "Average power".into(),
            points,
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_sweep, SweepOptions};

    #[test]
    fn table1_and_fig4_render() {
        assert!(table1().text.unwrap().contains("c_air"));
        assert!(fig4().text.unwrap().contains("Optimal"));
    }

    #[test]
    fn fig2_and_fig3_track_the_model() {
        let mut tb = Testbed::build_sized(3, 17).unwrap();
        let f2 = fig2(&mut tb, Seconds::new(300.0));
        assert_eq!(f2.series.len(), 2);
        assert_eq!(f2.series[0].points.len(), f2.series[1].points.len());
        // At the end of each dwell the filtered measurement approaches the
        // prediction; compare the final staircase step.
        let last_measured = f2.series[0].points.last().unwrap().1;
        let last_predicted = f2.series[1].points.last().unwrap().1;
        assert!(
            (last_measured - last_predicted).abs() < 3.0,
            "power: measured {last_measured} vs predicted {last_predicted}"
        );

        let f3 = fig3(&mut tb, Seconds::new(400.0));
        let last_measured = f3.series[0].points.last().unwrap().1;
        let last_predicted = f3.series[1].points.last().unwrap().1;
        assert!(
            (last_measured - last_predicted).abs() < 3.0,
            "temp: measured {last_measured} vs predicted {last_predicted}"
        );
    }

    #[test]
    fn sweep_figures_have_the_right_series() {
        let mut tb = Testbed::build_sized(3, 19).unwrap();
        let mut methods = Method::all();
        methods.push(Method::new(Strategy::Even, true, true));
        let options = SweepOptions {
            load_percents: vec![30.0, 80.0],
            settle_max: Seconds::new(2500.0),
            window: Seconds::new(30.0),
            ..SweepOptions::default()
        };
        let sweep = run_sweep(&mut tb, &methods, &options);
        assert_eq!(fig5(&sweep).series.len(), 6);
        assert_eq!(fig6(&sweep).series.len(), 8);
        assert_eq!(fig7(&sweep).series.len(), 3);
        assert_eq!(fig8(&sweep).series.len(), 3);
        assert_eq!(fig9(&sweep).series.len(), 2);
        let f10 = fig10(&sweep);
        assert_eq!(f10.series[0].points.len(), 8);
    }
}
