//! The `coolopt` command-line tool: profile a (simulated) machine room once,
//! persist the fitted profile, and answer planning queries against it.
//!
//! ```text
//! coolopt profile --machines 20 --seed 42 --out profile.json
//! coolopt solve   --profile profile.json --load 9.0
//! coolopt plan    --profile profile.json --method 8 --load-percent 45
//! coolopt methods
//! ```
//!
//! The tool speaks JSON on disk (`RoomProfile` from `coolopt-profiling`), so
//! a deployment against real hardware only needs to produce the same file.

use coolopt::alloc::{fig4_matrix, Method, Planner};
use coolopt::core::{consolidated_power, solve};
use coolopt::profiling::{profile_room_full, ProfileOptions, RoomProfile};
use coolopt::room::presets;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "profile" => cmd_profile(&flags),
        "solve" => cmd_solve(&flags),
        "plan" => cmd_plan(&flags),
        "methods" => {
            print!("{}", fig4_matrix());
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
coolopt — joint optimization of computing and cooling energy

USAGE:
  coolopt profile --machines N [--seed S] --out FILE   profile a simulated rack
  coolopt solve   --profile FILE --load L              optimal ON-set + loads + T_ac
  coolopt plan    --profile FILE --method 1..8 --load-percent P[,P2,…]
  coolopt methods                                      list the paper's methods";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if let Some(value) = iter.next() {
                flags.insert(name.to_string(), value.clone());
            }
        }
    }
    flags
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("could not parse {what} from `{value}`"))
}

fn load_profile(flags: &HashMap<String, String>) -> Result<RoomProfile, String> {
    let path = required(flags, "profile")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_profile(flags: &HashMap<String, String>) -> Result<(), String> {
    let machines: usize = parse(required(flags, "machines")?, "machine count")?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    let out = required(flags, "out")?;

    eprintln!("building and profiling a {machines}-machine rack (seed {seed})…");
    let mut room = presets::parametric_rack(machines, seed);
    let profile =
        profile_room_full(&mut room, &ProfileOptions::default()).map_err(|e| e.to_string())?;
    eprintln!(
        "fitted: {} | {} machines | supply ceiling {:.1} °C",
        profile.model.power(),
        profile.model.len(),
        profile.cooling.t_ac_max.as_celsius()
    );
    let json = serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_solve(flags: &HashMap<String, String>) -> Result<(), String> {
    let profile = load_profile(flags)?;
    let load: f64 = parse(required(flags, "load")?, "load")?;
    let solution = solve(&profile.model, load).map_err(|e| e.to_string())?;
    let power = consolidated_power(&profile.model, &solution);
    println!(
        "optimal for L = {load}: {} of {} machines on, T_ac = {}",
        solution.on.len(),
        profile.model.len(),
        profile.model.clamp_t_ac(solution.t_ac)
    );
    for (&i, &l) in solution.on.iter().zip(&solution.loads) {
        println!("  machine {i:>3}: {:>5.1} %", l * 100.0);
    }
    println!(
        "predicted: computing {}, cooling {}, total {}",
        power.computing, power.cooling, power.total
    );
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let profile = load_profile(flags)?;
    let method_no: u8 = parse(required(flags, "method")?, "method number")?;
    if !(1..=8).contains(&method_no) {
        return Err(format!("method must be 1..=8, got {method_no}"));
    }
    let percents: Vec<f64> = required(flags, "load-percent")?
        .split(',')
        .map(|p| parse(p.trim(), "load percent"))
        .collect::<Result<_, _>>()?;

    // One planner for every requested load point: the consolidation index
    // is built on the first plan and reused as a pure query afterwards.
    let planner = Planner::new(&profile.model, &profile.cooling.set_points);
    let method = Method::numbered(method_no);
    for &percent in &percents {
        let load = percent / 100.0 * profile.model.len() as f64;
        let plan = planner.plan(method, load).map_err(|e| e.to_string())?;
        println!("{method} at {percent} % load (L = {load:.2}):");
        println!(
            "  machines on : {} of {}",
            plan.on.len(),
            profile.model.len()
        );
        println!("  set point   : {}", plan.set_point);
        println!("  T_ac target : {}", plan.t_ac_target);
        for (i, &l) in plan.loads.iter().enumerate() {
            if l > 0.0 {
                println!("  machine {i:>3}: {:>5.1} %", l * 100.0);
            }
        }
    }
    Ok(())
}
