//! # CoolOpt — joint optimization of computing and cooling energy
//!
//! A reproduction of *“Joint Optimization of Computing and Cooling Energy:
//! Analytic Model and A Machine Room Case Study”* (Li, Le, Pham, Heo,
//! Abdelzaher — ICDCS 2012) as a production-quality Rust workspace.
//!
//! This facade crate re-exports every sub-crate under a single roof so that
//! applications can depend on `coolopt` alone:
//!
//! * [`units`] — typed physical quantities (the paper's Table I).
//! * [`sim`] — fixed-step ODE engine, traces, noise, steady-state detection.
//! * [`machine`] — server thermal/power simulation with emulated sensors.
//! * [`cooling`] — CRAC unit with return-air set-point control.
//! * [`room`] — the machine-room composition and the 20-machine testbed preset.
//! * [`workload`] — batch workload generation and load balancing.
//! * [`profiling`] — least-squares model fitting (the paper's §IV-A).
//! * [`model`] — the fitted analytic models (Eqs. 8, 9, 10 and 19).
//! * [`core`] — ★ the closed-form optimum (Eqs. 21, 22) and the optimal
//!   consolidation algorithms (Algorithms 1 and 2).
//! * [`alloc`] — allocation policies and the eight evaluation methods (Fig. 4).
//! * [`service`] — planner-as-a-service: the sharded multi-tenant query
//!   core (micro-batch coalescing, bounded admission, `coolopt-serve`).
//! * [`experiments`] — harness regenerating every table and figure.
//! * [`telemetry`] — counters, gauges, latency histograms and span timers
//!   across the whole stack, with JSON and Prometheus export (on by
//!   default; disable with `--no-default-features` for a zero-overhead
//!   build).
//!
//! ## Quickstart
//!
//! ```
//! use coolopt::room::presets::testbed_rack20;
//! use coolopt::profiling::profile_room;
//! use coolopt::core::closed_form::optimal_allocation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the simulated 20-machine rack and profile it, as in §IV-A.
//! let mut room = testbed_rack20(42);
//! let model = profile_room(&mut room)?;
//! // Solve for the energy-optimal cooling temperature and load split at 60 %.
//! let on: Vec<usize> = (0..20).collect();
//! let solution = optimal_allocation(&model, &on, 0.6 * 20.0)?;
//! assert!(solution.loads.iter().all(|l| *l >= 0.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use coolopt_alloc as alloc;
pub use coolopt_cooling as cooling;
pub use coolopt_core as core;
pub use coolopt_experiments as experiments;
pub use coolopt_machine as machine;
pub use coolopt_model as model;
pub use coolopt_profiling as profiling;
pub use coolopt_room as room;
pub use coolopt_scenario as scenario;
pub use coolopt_service as service;
pub use coolopt_sim as sim;
pub use coolopt_telemetry as telemetry;
pub use coolopt_units as units;
pub use coolopt_workload as workload;
