//! Beyond the paper: what happens to the steady-state-optimal controller
//! when the load is *not* steady?
//!
//! The paper explicitly scopes itself to steady batch loads. This example
//! drives the simulated rack through a diurnal load swing with an online
//! replanning controller and compares the holistic optimum (#8, replanned)
//! against replanned Even (#4) and the fully static practice (#1),
//! accounting for boot-transient throughput loss and temperature
//! excursions along the way.
//!
//! ```text
//! cargo run --release --example dynamic_workload
//! ```

use coolopt::alloc::Method;
use coolopt::experiments::runtime::{run_load_trace, sinusoidal_trace, RuntimeOptions};
use coolopt::experiments::Testbed;
use coolopt::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machines = 8;
    println!("building and profiling an {machines}-machine testbed…");
    let mut testbed = Testbed::build_sized(machines, 5)?;

    // Two simulated hours: load swings 15 % → 85 % → 15 % in 12 waves.
    let horizon = Seconds::new(7200.0);
    let trace = sinusoidal_trace(machines, 0.15, 0.85, horizon, 12);
    println!(
        "trace: {} plateaus over {}, load {:.1}–{:.1} machines",
        trace.len(),
        horizon,
        trace.iter().map(|p| p.load).fold(f64::INFINITY, f64::min),
        trace
            .iter()
            .map(|p| p.load)
            .fold(f64::NEG_INFINITY, f64::max),
    );

    let options = RuntimeOptions::default();
    let mut baseline_energy = None;
    for (label, method) in [
        ("static even (#1)", Method::numbered(1)),
        ("replanned even (#4)", Method::numbered(4)),
        ("replanned holistic (#8)", Method::numbered(8)),
    ] {
        let outcome = run_load_trace(&mut testbed, method, &trace, horizon, &options)?;
        let saving = baseline_energy
            .map(|base: f64| 100.0 * (base - outcome.energy.as_kwh()) / base)
            .map(|s| format!("{s:+.1} % vs static"))
            .unwrap_or_else(|| "baseline".to_string());
        baseline_energy.get_or_insert(outcome.energy.as_kwh());
        println!(
            "{label:<24} {:>7.2} kWh ({saving}) | served {:>6.2} % | \
             over-T_max {:>4.0} s | {} replans",
            outcome.energy.as_kwh(),
            outcome.served_fraction * 100.0,
            outcome.violation_seconds,
            outcome.replans,
        );
    }

    println!(
        "\nthe holistic controller keeps its savings under dynamic load, at the\n\
         price of boot-transient throughput dips — the regime the paper\n\
         deliberately left for future work."
    );
    Ok(())
}
