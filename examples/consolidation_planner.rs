//! The consolidation machinery, stand-alone: the kinetic-particle system of
//! the paper's Fig. 1, Algorithm 1/2 on the footnote counterexample, and a
//! certification against brute force.
//!
//! Everything here is pure algorithm — no simulation — so it runs in
//! milliseconds.
//!
//! ```text
//! cargo run --example consolidation_planner
//! ```

use coolopt::core::brute::{brute_force_select, brute_force_subsets};
use coolopt::core::heuristics::{
    footnote_counterexample, greedy_by_ratio, greedy_incremental, subset_ratio,
};
use coolopt::core::{ConsolidationIndex, ParticleSystem, PowerTerms};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 1: the one-dimensional kinetic system -----------------------
    // Four particles, two events (reconstruction of the paper's instance:
    // particle 0 passes particle 2 at t = 1, particle 3 passes 2 at t = 3).
    let fig1 = ParticleSystem::new(&[(4.0, 1.0), (1.0, 3.0), (5.0, 2.0), (3.5, 1.5)])?;
    println!("Fig. 1 — kinetic-particle system (x_i(t) = a_i − b_i·t):");
    for e in fig1.events() {
        println!(
            "  event: particle {} meets particle {} at t = {}",
            e.p, e.q, e.t
        );
    }
    for snap in fig1.orders() {
        println!("  order from t = {:>3}: {:?}", snap.since, snap.order);
    }

    // --- Footnote 1: both greedy heuristics fail --------------------------
    let pairs = footnote_counterexample();
    println!("\nfootnote counterexample A = {pairs:?}");
    let g1 = greedy_by_ratio(&pairs, 2).expect("k in range");
    let (opt2, opt2_ratio) = brute_force_select(&pairs, 2, 0.0).expect("feasible");
    println!(
        "  k=2, L=0: greedy-by-ratio picks {:?} (ratio {:.4}); optimum {:?} (ratio {:.4})",
        g1,
        subset_ratio(&pairs, &g1, 0.0).unwrap(),
        opt2,
        opt2_ratio
    );
    let g2 = greedy_incremental(&pairs, 3, 0.0).expect("k in range");
    let (opt3, opt3_ratio) = brute_force_select(&pairs, 3, 0.0).expect("feasible");
    println!(
        "  k=3, L=0: incremental greedy picks {:?} (ratio {:.5}); optimum {:?} (ratio {:.5})",
        g2,
        subset_ratio(&pairs, &g2, 0.0).unwrap(),
        opt3,
        opt3_ratio
    );

    // --- Algorithms 1 + 2 --------------------------------------------------
    let index = ConsolidationIndex::build(&pairs)?;
    println!(
        "\nAlgorithm 1 index: {} machines, {} orders, {} statuses",
        index.len(),
        index.order_count(),
        index.status_count()
    );
    let terms = PowerTerms::unbounded(40.0, 900.0);
    println!("queries (w2 = 40 W, rho = 900):");
    for load in [0.5, 1.0, 2.0, 3.0] {
        let exact = index
            .query_min_power(&terms, load, None)?
            .expect("servable load");
        let online = index.query_online(load).expect("servable load");
        let brute = brute_force_subsets(&pairs, &terms, load)?.expect("servable load");
        println!(
            "  L = {load}: optimal ON-set {:?} (t = {:.4}); Algorithm 2 prefix {:?}; \
             brute force agrees: {}",
            exact.on,
            exact.t,
            online.on,
            (exact.relative_power - brute.relative_power).abs() < 1e-9
        );
    }

    // --- maxL(A, P_b, k) ----------------------------------------------------
    println!("maxL(A, P_b, k = 2) over increasing budgets:");
    for p_b in [-1500.0, -1000.0, -500.0, 0.0] {
        match index.max_load(&terms, p_b, 2) {
            Some(l) => println!("  P_b = {p_b:>7}: L_max = {l:.4}"),
            None => println!("  P_b = {p_b:>7}: infeasible"),
        }
    }
    Ok(())
}
