//! The machine-room case study, condensed: profile the 20-machine testbed
//! and compare the paper's key methods at three load levels.
//!
//! The full evaluation (all methods × all loads × all figures) is the
//! `reproduce` binary in `coolopt-experiments`; this example trades
//! exhaustiveness for a ~1-minute runtime.
//!
//! ```text
//! cargo run --release --example machine_room_case_study
//! ```

use coolopt::alloc::Method;
use coolopt::experiments::{
    figures, render_figure, run_sweep, savings_summary, SweepOptions, Testbed,
};
use coolopt::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building and profiling the 20-machine testbed…");
    let mut testbed = Testbed::build(42)?;
    println!(
        "  fitted: {} | cooling slope {:.0} W/K | ceiling {:.1} °C",
        testbed.profile.model.power(),
        testbed.profile.model.cooling().cf(),
        testbed.profile.cooling.t_ac_max.as_celsius(),
    );

    // The three-way comparison the paper's conclusions rest on:
    // naive practice (#1), the prior state of the art (#7), this paper (#8).
    let methods = [
        Method::numbered(1),
        Method::numbered(7),
        Method::numbered(8),
    ];
    let options = SweepOptions {
        load_percents: vec![20.0, 50.0, 80.0],
        settle_max: Seconds::new(4000.0),
        window: Seconds::new(60.0),
        ..SweepOptions::default()
    };
    println!(
        "sweeping {} methods × {} loads…",
        methods.len(),
        options.load_percents.len()
    );
    let sweep = run_sweep(&mut testbed, &methods, &options);

    println!("\n{}", render_figure(&figures::fig9(&sweep)));
    println!("        load    #1 Even      #7 Cool-alloc   #8 Optimal");
    for &pct in &options.load_percents {
        let p = |m: Method| {
            sweep
                .get(m, pct)
                .map(|r| format!("{:>9.1} W", r.total_power().as_watts()))
                .unwrap_or_else(|| "      -".into())
        };
        println!(
            "      {pct:>4.0} %  {}  {}  {}",
            p(methods[0]),
            p(methods[1]),
            p(methods[2])
        );
    }

    if let Some(s) = savings_summary(&sweep, Method::numbered(8), Method::numbered(7)) {
        println!("\nholistic optimum vs cool job allocation: {s}");
    }
    if let Some(s) = savings_summary(&sweep, Method::numbered(8), Method::numbered(1)) {
        println!("holistic optimum vs standard practice:   {s}");
    }

    // Constraint audit, as in the paper ("we also verified that the
    // temperature constraints were not violated for any of the CPUs").
    let bad = sweep
        .iter()
        .filter(|r| !r.temps_ok || !r.throughput_ok)
        .count();
    println!(
        "\nconstraint audit: {} of {} runs violated a constraint",
        bad,
        sweep.len()
    );
    Ok(())
}
