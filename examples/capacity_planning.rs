//! What-if planning on the fitted model: how do the temperature cap, rack
//! size and a degraded cooling unit change the optimal operating point?
//!
//! Model-level sweeps are instantaneous; one scenario is validated against
//! the simulator at the end.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use coolopt::core::{consolidated_power, solve};
use coolopt::profiling::{profile_room_full, ProfileOptions};
use coolopt::room::presets;
use coolopt::units::{Seconds, TempDelta, Temperature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut room = presets::parametric_rack(10, 3);
    println!("profiling a 10-machine rack…");
    let profile = profile_room_full(&mut room, &ProfileOptions::default())?;
    let model = profile.model.clone();
    let load = 5.0; // 50 % of the rack

    // --- Sweep the CPU temperature cap -------------------------------------
    println!("\nhow much does a tighter CPU limit cost? (L = {load})");
    println!("  T_max    machines on    T_ac        predicted total");
    for dt in [-4.0, -2.0, 0.0, 2.0, 4.0] {
        let what_if = model.with_t_max(model.t_max() + TempDelta::from_kelvin(dt));
        match solve(&what_if, load) {
            Ok(sol) => {
                let p = consolidated_power(&what_if, &sol);
                println!(
                    "  {:>5.1} °C   {:>4}          {:>8}   {:>10}",
                    what_if.t_max().as_celsius(),
                    sol.on.len(),
                    format!("{}", what_if.clamp_t_ac(sol.t_ac)),
                    format!("{}", p.total)
                );
            }
            Err(e) => println!(
                "  {:>5.1} °C   infeasible: {e}",
                what_if.t_max().as_celsius()
            ),
        }
    }

    // --- Degraded cooling: the supply ceiling drops -------------------------
    println!("\nwhat if the CRAC can only deliver colder supply ceilings?");
    for ceiling_c in [21.0, 18.0, 15.0, 12.0] {
        let what_if = model
            .clone()
            .with_t_ac_max(Temperature::from_celsius(ceiling_c));
        let sol = solve(&what_if, load)?;
        let p = consolidated_power(&what_if, &sol);
        println!(
            "  ceiling {ceiling_c:>4.1} °C → {} machines on, predicted {}",
            sol.on.len(),
            p.total
        );
    }

    // --- Load growth: when does the rack run out? ---------------------------
    println!("\nload growth on the current rack:");
    for pct in [30.0, 60.0, 90.0, 99.0] {
        let l = pct / 100.0 * model.len() as f64;
        match solve(&model, l) {
            Ok(sol) => println!(
                "  {pct:>4.0} % → {} machines on, T_ac = {}",
                sol.on.len(),
                model.clamp_t_ac(sol.t_ac)
            ),
            Err(e) => println!("  {pct:>4.0} % → infeasible: {e}"),
        }
    }

    // --- Validate one model prediction against the simulator ----------------
    let sol = solve(&model, load)?;
    let predicted = consolidated_power(&model, &sol);
    room.apply_on_set(&sol.on);
    room.set_loads(&sol.full_loads(room.len()))?;
    let t_target = model.clamp_t_ac(sol.t_ac);
    room.set_set_point(profile.cooling.set_points.set_point_for(t_target, load));
    room.settle(Seconds::new(4000.0), 5.0);
    println!(
        "\nvalidation at L = {load}: model predicts {}, simulator measures {}",
        predicted.total,
        room.total_power()
    );
    Ok(())
}
