//! Quickstart: profile a simulated rack, compute the energy-optimal
//! operating point, apply it, and check what the instruments say.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coolopt::alloc::{Method, Planner};
use coolopt::core::solve;
use coolopt::profiling::{profile_room_full, ProfileOptions};
use coolopt::room::presets;
use coolopt::units::Seconds;
use coolopt::workload::{Capacity, DocumentGenerator, LoadBalancer, LoadVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-machine rack keeps the example fast; the evaluation binary
    // (`reproduce` in coolopt-experiments) runs the full 20-machine testbed.
    let mut room = presets::parametric_rack(8, 7);

    println!("profiling the rack (the paper's §IV-A staircases)…");
    let profile = profile_room_full(&mut room, &ProfileOptions::default())?;
    println!(
        "  power model   : {}  (r² = {:.4})",
        profile.model.power(),
        profile.power.r2
    );
    println!(
        "  cooling model : {}  (supply ceiling {:.1} °C)",
        profile.model.cooling(),
        profile.cooling.t_ac_max.as_celsius()
    );
    for (i, th) in profile.model.thermal_models().iter().enumerate() {
        println!("  machine {i}: {th}");
    }

    // Ask the optimizer for the cheapest way to serve 45 % of rack capacity.
    let total_load = 0.45 * room.len() as f64;
    let solution = solve(&profile.model, total_load)?;
    println!(
        "\noptimal plan for L = {total_load}: run {} of {} machines at T_ac = {}",
        solution.on.len(),
        room.len(),
        solution.t_ac
    );
    for (&i, &l) in solution.on.iter().zip(&solution.loads) {
        println!("  machine {i}: {:.1} % load", l * 100.0);
    }

    // Deploy through the policy layer (which adds the guard band and the
    // set-point calibration), let the room settle, and measure.
    let planner = Planner::new(&profile.model, &profile.cooling.set_points);
    let plan = planner.plan(Method::numbered(8), total_load)?;
    println!("\nplanner (with guard band) selects machines {:?}", plan.on);
    room.apply_on_set(&plan.on);
    room.set_loads(&plan.loads)?;
    room.set_set_point(plan.set_point);
    room.settle(Seconds::new(4000.0), 5.0);
    println!(
        "\ndeployed: set point {} → supply {}, total power {}",
        plan.set_point,
        room.air_state().t_supply,
        room.total_power()
    );
    let hottest = room
        .servers()
        .iter()
        .map(|s| s.cpu_temp())
        .fold(coolopt::units::Temperature::ZERO, |a, b| a.max(b));
    println!("hottest CPU: {hottest} (limit {})", profile.model.t_max());

    // And actually run the batch workload through the load balancer.
    let loads = LoadVector::new(plan.loads.clone())?;
    let capacities = vec![Capacity::new(120.0); room.len()];
    let mut balancer = LoadBalancer::new(&loads, &capacities)?;
    let mut generator = DocumentGenerator::new(1, 80);
    let mut histogram = coolopt::workload::WordHistogram::new();
    for doc in generator.batch(2000) {
        if balancer.dispatch(&doc).is_some() {
            histogram.merge(&coolopt::workload::process_document(&doc));
        }
    }
    println!(
        "\nprocessed {} documents ({} distinct words); dispatch shares:",
        balancer.stats().total,
        histogram.distinct()
    );
    for i in 0..room.len() {
        println!(
            "  machine {i}: {:.1} % of stream",
            balancer.stats().share(i) * 100.0
        );
    }
    Ok(())
}
