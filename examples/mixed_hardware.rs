//! Beyond the paper: heterogeneous hardware.
//!
//! The paper assumes one shared power model ("the same hardware
//! configuration"); its closed form leans on that. `coolopt-core::hetero`
//! generalizes the joint optimization to per-machine power curves — this
//! example mixes two server generations in one rack and shows how the
//! generalized optimum (a) matches the paper's closed form when the rack is
//! actually homogeneous, and (b) steers load toward the efficient machines
//! when it is not.
//!
//! ```text
//! cargo run --example mixed_hardware
//! ```

use coolopt::core::hetero::{optimal_allocation_hetero, HeteroMachine};
use coolopt::core::{optimal_allocation_clamped, ConsolidationIndex, PowerTerms};
use coolopt::model::{CoolingModel, PowerModel, RoomModel, ThermalModel};
use coolopt::units::{Temperature, Watts};

fn thermal(slot: usize, n: usize) -> ThermalModel {
    let h = slot as f64 / n.max(2) as f64;
    let alpha = 0.95 - 0.2 * h;
    let gamma = (290.0 + 4.0 * h) - alpha * 290.0;
    ThermalModel::new(alpha, 0.5 + 0.04 * h, gamma).expect("valid thermal model")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let t_max = Temperature::from_celsius(65.0);
    let cooling = CoolingModel::new(300.0, Temperature::from_celsius(45.0))?;
    let ceiling = Temperature::from_celsius(21.0);

    // --- A homogeneous rack: the generalization must agree with the paper.
    let shared = PowerModel::new(Watts::new(45.0), Watts::new(40.0))?;
    let machines: Vec<HeteroMachine> = (0..n)
        .map(|i| HeteroMachine {
            power: shared,
            thermal: thermal(i, n),
        })
        .collect();
    let load = 4.0;
    let hetero = optimal_allocation_hetero(&machines, &cooling, t_max, load, Some(ceiling))?;

    let model = RoomModel::new(
        shared,
        (0..n).map(|i| thermal(i, n)).collect(),
        cooling,
        t_max,
    )?
    .with_t_ac_max(ceiling);
    let on: Vec<usize> = (0..n).collect();
    let paper = optimal_allocation_clamped(&model, &on, load)?;
    println!("homogeneous rack, L = {load}:");
    println!(
        "  paper closed form : T_ac = {}, total computing {:.1} W",
        model.clamp_t_ac(paper.t_ac),
        paper
            .loads
            .iter()
            .map(|&l| shared.predict(l).as_watts())
            .sum::<f64>()
    );
    println!(
        "  generalized LP    : T_ac = {}, total computing {:.1} W  (must agree)",
        hetero.t_ac,
        hetero.computing.as_watts()
    );

    // --- Mix in old, inefficient machines (slots 0–3: 70 W/load, 55 W idle).
    let old_gen = PowerModel::new(Watts::new(70.0), Watts::new(55.0))?;
    let mixed: Vec<HeteroMachine> = (0..n)
        .map(|i| HeteroMachine {
            power: if i < 4 { old_gen } else { shared },
            thermal: thermal(i, n),
        })
        .collect();
    let sol = optimal_allocation_hetero(&mixed, &cooling, t_max, load, Some(ceiling))?;
    println!("\nmixed rack (slots 0–3 are an older, hungrier generation), L = {load}:");
    for (i, &l) in sol.loads.iter().enumerate() {
        let gen = if i < 4 { "old" } else { "new" };
        println!("  machine {i} ({gen}): {:>5.1} % load", l * 100.0);
    }
    println!(
        "  T_ac = {}, computing {}, cooling {}, total {}",
        sol.t_ac,
        sol.computing,
        sol.cooling,
        sol.total()
    );

    // --- Consolidation across a mixed fleet: enumerate ON-sets by brute
    //     combination of the paper's index (per-class) — here simply compare
    //     "prefer new machines" vs "prefer old" front ends.
    let new_first: Vec<HeteroMachine> = (4..n).chain(0..4).map(|i| mixed[i]).collect();
    let few_new = optimal_allocation_hetero(&new_first[..5], &cooling, t_max, load, Some(ceiling))?;
    let few_old = optimal_allocation_hetero(&mixed[..5], &cooling, t_max, load, Some(ceiling))?;
    println!(
        "\nserving L = {load} on 5 machines: new-generation subset {} vs old-heavy subset {}",
        few_new.total(),
        few_old.total()
    );

    // And the paper's own index still answers the homogeneous sub-questions.
    let index = ConsolidationIndex::build(&model.consolidation_pairs())?;
    let pick = index
        .query_min_power(&PowerTerms::from_model(&model), load, Some(&model))?
        .expect("servable");
    println!(
        "paper's Algorithm 1+2 on the homogeneous rack picks {} machines: {:?}",
        pick.k, pick.on
    );
    Ok(())
}
